//! Master-file (zone file) parsing and serialization — RFC 1035 §5
//! presentation format, covering every record type the workspace models
//! (including DNSSEC types with base64/hex fields). This is the on-disk
//! interchange format `dnssec-signzone`-style tooling operates on.

use std::fmt::Write as _;

use crate::base32;
use crate::name::Name;
use crate::rdata::{Dnskey, Ds, Nsec, Nsec3, Nsec3Param, RData, Rrsig, Soa};
use crate::rrset::Record;
use crate::types::{RrType, TypeBitmap};
use crate::zone::Zone;

/// Parse errors with line context.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

// ------------------------------------------------------------- base64

const B64: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with padding (RFC 4648 §4), as used for DNSKEY public
/// keys and RRSIG signatures in presentation format.
pub fn base64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b = [
            chunk[0],
            chunk.get(1).copied().unwrap_or(0),
            chunk.get(2).copied().unwrap_or(0),
        ];
        let v = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(B64[(v >> 18) as usize & 0x3f] as char);
        out.push(B64[(v >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            B64[(v >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64[v as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Decodes standard base64 (padding optional, whitespace rejected).
pub fn base64_decode(s: &str) -> Option<Vec<u8>> {
    let s = s.trim_end_matches('=');
    let mut out = Vec::with_capacity(s.len() * 3 / 4);
    let mut acc: u32 = 0;
    let mut bits = 0u32;
    for c in s.bytes() {
        let v = match c {
            b'A'..=b'Z' => c - b'A',
            b'a'..=b'z' => c - b'a' + 26,
            b'0'..=b'9' => c - b'0' + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        };
        acc = (acc << 6) | u32::from(v);
        bits += 6;
        if bits >= 8 {
            bits -= 8;
            out.push((acc >> bits) as u8);
        }
    }
    Some(out)
}

fn hex_encode(data: &[u8]) -> String {
    data.iter().fold(String::new(), |mut s, b| {
        let _ = write!(s, "{b:02X}");
        s
    })
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if s == "-" {
        return Some(Vec::new());
    }
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).ok())
        .collect()
}

// --------------------------------------------------------- serialization

/// Renders one record in presentation format.
pub fn record_to_line(rec: &Record) -> String {
    let rdata = rdata_to_text(&rec.rdata);
    format!(
        "{} {} IN {} {}",
        rec.name,
        rec.ttl,
        rec.rtype().mnemonic(),
        rdata
    )
}

fn rdata_to_text(rd: &RData) -> String {
    match rd {
        RData::A(a) => a.to_string(),
        RData::Aaaa(a) => a.to_string(),
        RData::Ns(n) | RData::Cname(n) => n.to_string(),
        RData::Soa(s) => format!(
            "{} {} {} {} {} {} {}",
            s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
        ),
        RData::Mx {
            preference,
            exchange,
        } => format!("{preference} {exchange}"),
        RData::Txt(strings) => strings
            .iter()
            .map(|s| format!("\"{}\"", s.replace('\\', "\\\\").replace('"', "\\\"")))
            .collect::<Vec<_>>()
            .join(" "),
        RData::Dnskey(k) | RData::Cdnskey(k) => format!(
            "{} {} {} {}",
            k.flags,
            k.protocol,
            k.algorithm,
            base64_encode(&k.public_key)
        ),
        RData::Rrsig(s) => format!(
            "{} {} {} {} {} {} {} {} {}",
            s.type_covered.mnemonic(),
            s.algorithm,
            s.labels,
            s.original_ttl,
            s.expiration,
            s.inception,
            s.key_tag,
            s.signer_name,
            base64_encode(&s.signature)
        ),
        RData::Ds(d) | RData::Cds(d) => format!(
            "{} {} {} {}",
            d.key_tag,
            d.algorithm,
            d.digest_type,
            hex_encode(&d.digest)
        ),
        RData::Nsec(n) => {
            let mut out = n.next_name.to_string();
            for t in n.type_bitmap.types() {
                out.push(' ');
                out.push_str(&t.mnemonic());
            }
            out
        }
        RData::Nsec3(n) => {
            let mut out = format!(
                "{} {} {} {} {}",
                n.hash_algorithm,
                n.flags,
                n.iterations,
                if n.salt.is_empty() {
                    "-".to_string()
                } else {
                    hex_encode(&n.salt)
                },
                base32::encode(&n.next_hashed_owner)
            );
            for t in n.type_bitmap.types() {
                out.push(' ');
                out.push_str(&t.mnemonic());
            }
            out
        }
        RData::Nsec3Param(p) => format!(
            "{} {} {} {}",
            p.hash_algorithm,
            p.flags,
            p.iterations,
            if p.salt.is_empty() {
                "-".to_string()
            } else {
                hex_encode(&p.salt)
            }
        ),
        // RFC 3597 generic encoding.
        RData::Unknown { rtype: _, data } => {
            if data.is_empty() {
                "\\# 0".to_string()
            } else {
                format!("\\# {} {}", data.len(), hex_encode(data))
            }
        }
    }
}

/// Renders a whole zone in canonical order.
pub fn zone_to_master(zone: &Zone) -> String {
    let mut out = format!("$ORIGIN {}\n", zone.apex());
    for set in zone.rrsets() {
        for rd in &set.rdatas {
            out.push_str(&record_to_line(&Record::new(
                set.name.clone(),
                set.ttl,
                rd.clone(),
            )));
            out.push('\n');
        }
    }
    out
}

// --------------------------------------------------------------- parsing

struct Fields<'a> {
    parts: Vec<&'a str>,
    pos: usize,
    line: usize,
}

impl<'a> Fields<'a> {
    fn next(&mut self) -> Result<&'a str, ParseError> {
        let f = self
            .parts
            .get(self.pos)
            .ok_or_else(|| err(self.line, "unexpected end of record"))?;
        self.pos += 1;
        Ok(f)
    }

    fn rest(&mut self) -> Vec<&'a str> {
        let r = self.parts[self.pos..].to_vec();
        self.pos = self.parts.len();
        r
    }

    fn num<T: std::str::FromStr>(&mut self, what: &str) -> Result<T, ParseError> {
        let f = self.next()?;
        f.parse()
            .map_err(|_| err(self.line, format!("bad {what}: {f}")))
    }

    fn name(&mut self, what: &str) -> Result<Name, ParseError> {
        let f = self.next()?;
        f.parse()
            .map_err(|_| err(self.line, format!("bad {what}: {f}")))
    }
}

fn rtype_from_mnemonic(s: &str) -> Option<RrType> {
    Some(match s {
        "A" => RrType::A,
        "NS" => RrType::Ns,
        "CNAME" => RrType::Cname,
        "SOA" => RrType::Soa,
        "MX" => RrType::Mx,
        "TXT" => RrType::Txt,
        "AAAA" => RrType::Aaaa,
        "OPT" => RrType::Opt,
        "AXFR" => RrType::Axfr,
        "DS" => RrType::Ds,
        "CDS" => RrType::Cds,
        "CDNSKEY" => RrType::Cdnskey,
        "RRSIG" => RrType::Rrsig,
        "NSEC" => RrType::Nsec,
        "DNSKEY" => RrType::Dnskey,
        "NSEC3" => RrType::Nsec3,
        "NSEC3PARAM" => RrType::Nsec3Param,
        other => {
            let code = other.strip_prefix("TYPE")?.parse().ok()?;
            RrType::from_code(code)
        }
    })
}

/// Parses one presentation-format line into a record. `$ORIGIN`, comments,
/// and blank lines are handled by [`parse_master`].
pub fn parse_record_line(line_no: usize, line: &str) -> Result<Record, ParseError> {
    let parts: Vec<&str> = tokenize(line);
    if parts.len() < 4 {
        return Err(err(line_no, "record needs name, TTL, class, type"));
    }
    let mut f = Fields {
        parts,
        pos: 0,
        line: line_no,
    };
    let name: Name = f.name("owner name")?;
    let ttl: u32 = f.num("TTL")?;
    let class = f.next()?;
    if class != "IN" {
        return Err(err(line_no, format!("unsupported class {class}")));
    }
    let rtype_txt = f.next()?;
    let rtype = rtype_from_mnemonic(rtype_txt)
        .ok_or_else(|| err(line_no, format!("unknown type {rtype_txt}")))?;
    let rdata = parse_rdata(rtype, &mut f)?;
    Ok(Record::new(name, ttl, rdata))
}

/// Splits a line into fields, honoring quoted strings (for TXT).
fn tokenize(line: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            break;
        }
        if bytes[i] == b';' {
            break; // comment
        }
        let start = i;
        if bytes[i] == b'"' {
            i += 1;
            while i < bytes.len() && (bytes[i] != b'"' || bytes[i - 1] == b'\\') {
                i += 1;
            }
            i = (i + 1).min(bytes.len());
        } else {
            while i < bytes.len() && !bytes[i].is_ascii_whitespace() {
                i += 1;
            }
        }
        out.push(&line[start..i]);
    }
    out
}

fn parse_rdata(rtype: RrType, f: &mut Fields) -> Result<RData, ParseError> {
    let line = f.line;
    Ok(match rtype {
        RrType::A => RData::A(
            f.next()?
                .parse()
                .map_err(|_| err(line, "bad IPv4 address"))?,
        ),
        RrType::Aaaa => RData::Aaaa(
            f.next()?
                .parse()
                .map_err(|_| err(line, "bad IPv6 address"))?,
        ),
        RrType::Ns => RData::Ns(f.name("NS target")?),
        RrType::Cname => RData::Cname(f.name("CNAME target")?),
        RrType::Soa => RData::Soa(Soa {
            mname: f.name("SOA mname")?,
            rname: f.name("SOA rname")?,
            serial: f.num("serial")?,
            refresh: f.num("refresh")?,
            retry: f.num("retry")?,
            expire: f.num("expire")?,
            minimum: f.num("minimum")?,
        }),
        RrType::Mx => RData::Mx {
            preference: f.num("MX preference")?,
            exchange: f.name("MX exchange")?,
        },
        RrType::Txt => {
            let mut strings = Vec::new();
            for raw in f.rest() {
                let s = raw
                    .strip_prefix('"')
                    .and_then(|s| s.strip_suffix('"'))
                    .unwrap_or(raw);
                strings.push(s.replace("\\\"", "\"").replace("\\\\", "\\"));
            }
            if strings.is_empty() {
                return Err(err(line, "TXT needs at least one string"));
            }
            RData::Txt(strings)
        }
        RrType::Dnskey | RrType::Cdnskey => {
            let k = Dnskey {
                flags: f.num("DNSKEY flags")?,
                protocol: f.num("protocol")?,
                algorithm: f.num("algorithm")?,
                public_key: base64_decode(f.next()?)
                    .ok_or_else(|| err(line, "bad DNSKEY base64"))?,
            };
            if rtype == RrType::Cdnskey {
                RData::Cdnskey(k)
            } else {
                RData::Dnskey(k)
            }
        }
        RrType::Rrsig => {
            let covered = f.next()?;
            let type_covered = rtype_from_mnemonic(covered)
                .ok_or_else(|| err(line, format!("unknown covered type {covered}")))?;
            RData::Rrsig(Rrsig {
                type_covered,
                algorithm: f.num("algorithm")?,
                labels: f.num("labels")?,
                original_ttl: f.num("original TTL")?,
                expiration: f.num("expiration")?,
                inception: f.num("inception")?,
                key_tag: f.num("key tag")?,
                signer_name: f.name("signer name")?,
                signature: base64_decode(f.next()?).ok_or_else(|| err(line, "bad RRSIG base64"))?,
            })
        }
        RrType::Ds | RrType::Cds => {
            let ds = Ds {
                key_tag: f.num("key tag")?,
                algorithm: f.num("algorithm")?,
                digest_type: f.num("digest type")?,
                digest: hex_decode(f.next()?).ok_or_else(|| err(line, "bad DS digest hex"))?,
            };
            if rtype == RrType::Cds {
                RData::Cds(ds)
            } else {
                RData::Ds(ds)
            }
        }
        RrType::Nsec => {
            let next_name = f.name("NSEC next name")?;
            let mut bitmap = TypeBitmap::new();
            for t in f.rest() {
                bitmap.insert(
                    rtype_from_mnemonic(t)
                        .ok_or_else(|| err(line, format!("unknown bitmap type {t}")))?,
                );
            }
            RData::Nsec(Nsec {
                next_name,
                type_bitmap: bitmap,
            })
        }
        RrType::Nsec3 => {
            let hash_algorithm = f.num("hash algorithm")?;
            let flags = f.num("flags")?;
            let iterations = f.num("iterations")?;
            let salt = hex_decode(f.next()?).ok_or_else(|| err(line, "bad salt"))?;
            let next =
                base32::decode(f.next()?).ok_or_else(|| err(line, "bad next-hash base32"))?;
            let mut bitmap = TypeBitmap::new();
            for t in f.rest() {
                bitmap.insert(
                    rtype_from_mnemonic(t)
                        .ok_or_else(|| err(line, format!("unknown bitmap type {t}")))?,
                );
            }
            RData::Nsec3(Nsec3 {
                hash_algorithm,
                flags,
                iterations,
                salt,
                next_hashed_owner: next,
                type_bitmap: bitmap,
            })
        }
        RrType::Nsec3Param => RData::Nsec3Param(Nsec3Param {
            hash_algorithm: f.num("hash algorithm")?,
            flags: f.num("flags")?,
            iterations: f.num("iterations")?,
            salt: hex_decode(f.next()?).ok_or_else(|| err(line, "bad salt"))?,
        }),
        other => {
            return Err(err(
                line,
                format!("type {other} not supported in master files"),
            ))
        }
    })
}

/// Parses a whole master file into a zone. The apex comes from `$ORIGIN`
/// or, failing that, the SOA owner.
pub fn parse_master(text: &str) -> Result<Zone, ParseError> {
    let mut records: Vec<Record> = Vec::new();
    let mut origin: Option<Name> = None;
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with(';') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("$ORIGIN") {
            let name = rest.trim().trim_end_matches(';').trim();
            origin = Some(
                name.parse()
                    .map_err(|_| err(line_no, format!("bad $ORIGIN {name}")))?,
            );
            continue;
        }
        if line.starts_with('$') {
            return Err(err(line_no, format!("unsupported directive {line}")));
        }
        records.push(parse_record_line(line_no, line)?);
    }
    let apex = origin
        .or_else(|| {
            records
                .iter()
                .find(|r| r.rtype() == RrType::Soa)
                .map(|r| r.name.clone())
        })
        .ok_or_else(|| err(0, "no $ORIGIN and no SOA record"))?;
    let mut zone = Zone::new(apex.clone());
    for rec in records {
        if !rec.name.is_subdomain_of(&apex) {
            return Err(err(0, format!("{} outside zone {apex}", rec.name)));
        }
        zone.add(rec);
    }
    Ok(zone)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use proptest::prelude::*;

    #[test]
    fn base64_vectors() {
        // RFC 4648 §10.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy").unwrap(), b"foobar");
        assert_eq!(base64_decode("Zg==").unwrap(), b"f");
        assert!(base64_decode("Z!").is_none());
    }

    fn sample_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 2024,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        z.add(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A("192.0.2.1".parse().unwrap()),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Mx {
                preference: 10,
                exchange: name("mail.example.com"),
            },
        ));
        z.add(Record::new(
            name("example.com"),
            300,
            RData::Txt(vec!["v=spf1 -all".into(), "quote \" here".into()]),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Dnskey(Dnskey {
                flags: 257,
                protocol: 3,
                algorithm: 13,
                public_key: vec![1, 2, 3, 4, 5, 6, 7, 8, 9],
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ds(Ds {
                key_tag: 4711,
                algorithm: 13,
                digest_type: 2,
                digest: vec![0xAB; 32],
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            300,
            RData::Nsec(Nsec {
                next_name: name("ns1.example.com"),
                type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns, RrType::Mx]),
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            0,
            RData::Nsec3Param(Nsec3Param {
                hash_algorithm: 1,
                flags: 0,
                iterations: 0,
                salt: vec![0xde, 0xad],
            }),
        ));
        z
    }

    #[test]
    fn zone_round_trip() {
        let zone = sample_zone();
        let text = zone_to_master(&zone);
        let back = parse_master(&text).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn signed_zone_round_trip() {
        // Built by hand (no dev-dependency on the signer crate).
        let mut zone = sample_zone();
        zone.add(Record::new(
            name("example.com"),
            3600,
            RData::Rrsig(Rrsig {
                type_covered: RrType::Soa,
                algorithm: 13,
                labels: 2,
                original_ttl: 3600,
                expiration: 2_000_000,
                inception: 1_000_000,
                key_tag: 4711,
                signer_name: name("example.com"),
                signature: vec![9; 64],
            }),
        ));
        zone.add(Record::new(
            name("abcdef0123456789abcdef0123456789.example.com"),
            300,
            RData::Nsec3(Nsec3 {
                hash_algorithm: 1,
                flags: 1,
                iterations: 5,
                salt: vec![],
                next_hashed_owner: vec![0x42; 20],
                type_bitmap: TypeBitmap::from_types([RrType::A]),
            }),
        ));
        let text = zone_to_master(&zone);
        let back = parse_master(&text).unwrap();
        assert_eq!(back, zone);
    }

    #[test]
    fn comments_and_blanks_skipped() {
        let text = "\
$ORIGIN example.com.
; a comment
example.com. 3600 IN SOA ns1.example.com. hostmaster.example.com. 1 2 3 4 5

www.example.com. 300 IN A 192.0.2.80 ; trailing comment
";
        let zone = parse_master(text).unwrap();
        assert!(zone.soa().is_some());
        assert!(zone.get(&name("www.example.com"), RrType::A).is_some());
    }

    #[test]
    fn origin_from_soa_when_missing() {
        let text = "example.org. 3600 IN SOA ns1.example.org. h.example.org. 1 2 3 4 5\n";
        let zone = parse_master(text).unwrap();
        assert_eq!(zone.apex(), &name("example.org"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "$ORIGIN example.com.\nexample.com. 3600 IN SOA broken\n";
        let e = parse_master(text).unwrap_err();
        assert_eq!(e.line, 2);
        let e = parse_master("example.com. x IN A 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("TTL"));
        let e = parse_master("example.com. 1 CH A 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("class"));
        let e = parse_master("example.com. 1 IN WHAT 1.2.3.4\n").unwrap_err();
        assert!(e.message.contains("unknown type"));
    }

    #[test]
    fn out_of_zone_record_rejected() {
        let text = "\
$ORIGIN example.com.
example.com. 3600 IN SOA ns1.example.com. h.example.com. 1 2 3 4 5
other.org. 300 IN A 192.0.2.1
";
        assert!(parse_master(text).is_err());
    }

    #[test]
    fn txt_quoting_round_trips() {
        let rec = Record::new(
            name("t.example.com"),
            60,
            RData::Txt(vec!["with \"quotes\" and \\slashes\\".into()]),
        );
        let line = record_to_line(&rec);
        let back = parse_record_line(1, &line).unwrap();
        assert_eq!(back, rec);
    }

    proptest! {
        #[test]
        fn base64_round_trip(data in proptest::collection::vec(any::<u8>(), 0..128)) {
            prop_assert_eq!(base64_decode(&base64_encode(&data)).unwrap(), data);
        }

        #[test]
        fn ds_line_round_trip(tag in any::<u16>(), alg in 1u8..20, dt in 1u8..5,
                              digest in proptest::collection::vec(any::<u8>(), 20..48)) {
            let rec = Record::new(
                name("x.example.com"),
                300,
                RData::Ds(Ds { key_tag: tag, algorithm: alg, digest_type: dt, digest }),
            );
            let line = record_to_line(&rec);
            let back = parse_record_line(1, &line).unwrap();
            prop_assert_eq!(back, rec);
        }
    }
}
