//! Resource record data (RDATA) for every type the diagnostics model.
//!
//! Each variant carries a typed struct. [`RData::to_wire`] produces the wire
//! RDATA (names uncompressed, as required inside DNSSEC records), and
//! [`RData::canonical_wire`] the canonical form used for signing and key-tag
//! computation (RFC 4034 §6.2: embedded names lowercased).

use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};

use serde::{Deserialize, Serialize};

use crate::base32;
use crate::name::Name;
use crate::types::{RrType, TypeBitmap};

/// DNSKEY flag bit: Zone Key (RFC 4034 §2.1.1).
pub const DNSKEY_FLAG_ZONE: u16 = 0x0100;
/// DNSKEY flag bit: Secure Entry Point (RFC 4034 §2.1.1).
pub const DNSKEY_FLAG_SEP: u16 = 0x0001;
/// DNSKEY flag bit: Revoked (RFC 5011 §2.1).
pub const DNSKEY_FLAG_REVOKE: u16 = 0x0080;

/// SOA RDATA (RFC 1035 §3.3.13).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Soa {
    pub mname: Name,
    pub rname: Name,
    pub serial: u32,
    pub refresh: u32,
    pub retry: u32,
    pub expire: u32,
    pub minimum: u32,
}

/// DNSKEY RDATA (RFC 4034 §2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dnskey {
    pub flags: u16,
    pub protocol: u8,
    pub algorithm: u8,
    pub public_key: Vec<u8>,
}

impl Dnskey {
    /// True if the Zone Key flag is set; keys without it must not be used
    /// for validation (RFC 4034 §2.1.1).
    pub fn is_zone_key(&self) -> bool {
        self.flags & DNSKEY_FLAG_ZONE != 0
    }

    /// True if the Secure Entry Point flag is set (conventionally a KSK).
    pub fn is_sep(&self) -> bool {
        self.flags & DNSKEY_FLAG_SEP != 0
    }

    /// True if the key carries the RFC 5011 REVOKE bit.
    pub fn is_revoked(&self) -> bool {
        self.flags & DNSKEY_FLAG_REVOKE != 0
    }

    /// Appends the DNSKEY RDATA wire form (flags | protocol | algorithm |
    /// public key) to `out` without routing through an [`RData`] wrapper.
    pub fn wire_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.flags.to_be_bytes());
        out.push(self.protocol);
        out.push(self.algorithm);
        out.extend_from_slice(&self.public_key);
    }

    /// Key tag per RFC 4034 Appendix B: ones-complement-style checksum over
    /// the RDATA.
    pub fn key_tag(&self) -> u16 {
        let mut rdata = Vec::with_capacity(4 + self.public_key.len());
        self.wire_into(&mut rdata);
        let mut acc: u32 = 0;
        for (i, &b) in rdata.iter().enumerate() {
            if i % 2 == 0 {
                acc += u32::from(b) << 8;
            } else {
                acc += u32::from(b);
            }
        }
        acc += (acc >> 16) & 0xffff;
        (acc & 0xffff) as u16
    }

    /// Bit length of the stored key material.
    pub fn key_bits(&self) -> usize {
        self.public_key.len() * 8
    }
}

/// RRSIG RDATA (RFC 4034 §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rrsig {
    pub type_covered: RrType,
    pub algorithm: u8,
    /// Number of labels in the *original* owner name, excluding root and any
    /// wildcard label (RFC 4034 §3.1.3).
    pub labels: u8,
    pub original_ttl: u32,
    /// Signature expiration, seconds since the simulation epoch.
    pub expiration: u32,
    /// Signature inception, seconds since the simulation epoch.
    pub inception: u32,
    pub key_tag: u16,
    pub signer_name: Name,
    pub signature: Vec<u8>,
}

impl Rrsig {
    /// The RDATA prefix covered by the signature itself: everything up to
    /// and excluding the signature field (RFC 4034 §3.1.8.1).
    pub fn signed_prefix(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.signed_prefix_into(&mut out);
        out
    }

    /// Appends the signed RDATA prefix to `out` (allocation-free form of
    /// [`Rrsig::signed_prefix`]).
    pub fn signed_prefix_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.type_covered.code().to_be_bytes());
        out.push(self.algorithm);
        out.push(self.labels);
        out.extend_from_slice(&self.original_ttl.to_be_bytes());
        out.extend_from_slice(&self.expiration.to_be_bytes());
        out.extend_from_slice(&self.inception.to_be_bytes());
        out.extend_from_slice(&self.key_tag.to_be_bytes());
        self.signer_name.canonical_wire_into(out);
    }

    /// True if `now` falls inside the validity window, inclusive.
    pub fn is_current(&self, now: u32) -> bool {
        self.inception <= now && now <= self.expiration
    }
}

/// DS RDATA (RFC 4034 §5).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ds {
    pub key_tag: u16,
    pub algorithm: u8,
    pub digest_type: u8,
    pub digest: Vec<u8>,
}

/// NSEC RDATA (RFC 4034 §4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec {
    pub next_name: Name,
    pub type_bitmap: TypeBitmap,
}

/// NSEC3 RDATA (RFC 5155 §3).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec3 {
    pub hash_algorithm: u8,
    pub flags: u8,
    pub iterations: u16,
    pub salt: Vec<u8>,
    pub next_hashed_owner: Vec<u8>,
    pub type_bitmap: TypeBitmap,
}

/// NSEC3 flag bit: Opt-Out (RFC 5155 §3.1.2.1).
pub const NSEC3_FLAG_OPT_OUT: u8 = 0x01;

impl Nsec3 {
    /// True if the Opt-Out flag is set.
    pub fn opt_out(&self) -> bool {
        self.flags & NSEC3_FLAG_OPT_OUT != 0
    }
}

/// NSEC3PARAM RDATA (RFC 5155 §4).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec3Param {
    pub hash_algorithm: u8,
    pub flags: u8,
    pub iterations: u16,
    pub salt: Vec<u8>,
}

/// The RDATA payload of a record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RData {
    A(Ipv4Addr),
    Aaaa(Ipv6Addr),
    Ns(Name),
    Cname(Name),
    Soa(Soa),
    Mx {
        preference: u16,
        exchange: Name,
    },
    Txt(Vec<String>),
    Dnskey(Dnskey),
    Rrsig(Rrsig),
    Ds(Ds),
    Nsec(Nsec),
    Nsec3(Nsec3),
    Nsec3Param(Nsec3Param),
    /// Child DS (RFC 7344 §3.1): same RDATA layout as DS.
    Cds(Ds),
    /// Child DNSKEY (RFC 7344 §3.2): same RDATA layout as DNSKEY.
    Cdnskey(Dnskey),
    /// Opaque RDATA for types we do not model.
    Unknown {
        rtype: u16,
        data: Vec<u8>,
    },
}

impl RData {
    /// The record type of this payload.
    pub fn rtype(&self) -> RrType {
        match self {
            RData::A(_) => RrType::A,
            RData::Aaaa(_) => RrType::Aaaa,
            RData::Ns(_) => RrType::Ns,
            RData::Cname(_) => RrType::Cname,
            RData::Soa(_) => RrType::Soa,
            RData::Mx { .. } => RrType::Mx,
            RData::Txt(_) => RrType::Txt,
            RData::Dnskey(_) => RrType::Dnskey,
            RData::Rrsig(_) => RrType::Rrsig,
            RData::Ds(_) => RrType::Ds,
            RData::Nsec(_) => RrType::Nsec,
            RData::Nsec3(_) => RrType::Nsec3,
            RData::Nsec3Param(_) => RrType::Nsec3Param,
            RData::Cds(_) => RrType::Cds,
            RData::Cdnskey(_) => RrType::Cdnskey,
            RData::Unknown { rtype, .. } => RrType::from_code(*rtype),
        }
    }

    /// Wire RDATA with names in their stored case, uncompressed.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(false, &mut out);
        out
    }

    /// Canonical wire RDATA: embedded names lowercased (RFC 4034 §6.2).
    pub fn canonical_wire(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(true, &mut out);
        out
    }

    /// Appends the wire RDATA (stored-case names) to `out`.
    pub fn to_wire_into(&self, out: &mut Vec<u8>) {
        self.encode_into(false, out);
    }

    /// Appends the canonical wire RDATA (lowercased names) to `out`.
    pub fn canonical_wire_into(&self, out: &mut Vec<u8>) {
        self.encode_into(true, out);
    }

    fn encode_into(&self, canonical: bool, out: &mut Vec<u8>) {
        fn name_wire(n: &Name, canonical: bool, out: &mut Vec<u8>) {
            if canonical {
                n.canonical_wire_into(out);
            } else {
                // Uncompressed, original case.
                out.reserve(n.wire_len());
                for label in n.labels() {
                    out.push(label.len() as u8);
                    out.extend_from_slice(label.as_bytes());
                }
                out.push(0);
            }
        }
        match self {
            RData::A(addr) => out.extend_from_slice(&addr.octets()),
            RData::Aaaa(addr) => out.extend_from_slice(&addr.octets()),
            RData::Ns(n) | RData::Cname(n) => name_wire(n, canonical, out),
            RData::Soa(soa) => {
                name_wire(&soa.mname, canonical, out);
                name_wire(&soa.rname, canonical, out);
                for v in [soa.serial, soa.refresh, soa.retry, soa.expire, soa.minimum] {
                    out.extend_from_slice(&v.to_be_bytes());
                }
            }
            RData::Mx {
                preference,
                exchange,
            } => {
                out.extend_from_slice(&preference.to_be_bytes());
                name_wire(exchange, canonical, out);
            }
            RData::Txt(strings) => {
                for s in strings {
                    let b = s.as_bytes();
                    let len = b.len().min(255);
                    out.push(len as u8);
                    out.extend_from_slice(&b[..len]);
                }
            }
            RData::Dnskey(k) | RData::Cdnskey(k) => k.wire_into(out),
            RData::Rrsig(sig) => {
                sig.signed_prefix_into(out);
                out.extend_from_slice(&sig.signature);
            }
            RData::Ds(ds) | RData::Cds(ds) => {
                out.extend_from_slice(&ds.key_tag.to_be_bytes());
                out.push(ds.algorithm);
                out.push(ds.digest_type);
                out.extend_from_slice(&ds.digest);
            }
            RData::Nsec(nsec) => {
                name_wire(&nsec.next_name, canonical, out);
                out.extend(nsec.type_bitmap.to_wire());
            }
            RData::Nsec3(n3) => {
                out.push(n3.hash_algorithm);
                out.push(n3.flags);
                out.extend_from_slice(&n3.iterations.to_be_bytes());
                out.push(n3.salt.len() as u8);
                out.extend_from_slice(&n3.salt);
                out.push(n3.next_hashed_owner.len() as u8);
                out.extend_from_slice(&n3.next_hashed_owner);
                out.extend(n3.type_bitmap.to_wire());
            }
            RData::Nsec3Param(p) => {
                out.push(p.hash_algorithm);
                out.push(p.flags);
                out.extend_from_slice(&p.iterations.to_be_bytes());
                out.push(p.salt.len() as u8);
                out.extend_from_slice(&p.salt);
            }
            RData::Unknown { data, .. } => out.extend_from_slice(data),
        }
    }
}

fn hex(data: &[u8]) -> String {
    data.iter().map(|b| format!("{b:02X}")).collect()
}

impl fmt::Display for RData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RData::A(a) => write!(f, "{a}"),
            RData::Aaaa(a) => write!(f, "{a}"),
            RData::Ns(n) => write!(f, "{n}"),
            RData::Cname(n) => write!(f, "{n}"),
            RData::Soa(s) => write!(
                f,
                "{} {} {} {} {} {} {}",
                s.mname, s.rname, s.serial, s.refresh, s.retry, s.expire, s.minimum
            ),
            RData::Mx {
                preference,
                exchange,
            } => write!(f, "{preference} {exchange}"),
            RData::Txt(strings) => {
                let quoted: Vec<String> = strings.iter().map(|s| format!("\"{s}\"")).collect();
                write!(f, "{}", quoted.join(" "))
            }
            RData::Dnskey(k) | RData::Cdnskey(k) => write!(
                f,
                "{} {} {} {} ; key_tag={}",
                k.flags,
                k.protocol,
                k.algorithm,
                hex(&k.public_key),
                k.key_tag()
            ),
            RData::Rrsig(s) => write!(
                f,
                "{} {} {} {} {} {} {} {} {}",
                s.type_covered,
                s.algorithm,
                s.labels,
                s.original_ttl,
                s.expiration,
                s.inception,
                s.key_tag,
                s.signer_name,
                hex(&s.signature)
            ),
            RData::Ds(d) | RData::Cds(d) => write!(
                f,
                "{} {} {} {}",
                d.key_tag,
                d.algorithm,
                d.digest_type,
                hex(&d.digest)
            ),
            RData::Nsec(n) => write!(f, "{} {}", n.next_name, n.type_bitmap),
            RData::Nsec3(n) => write!(
                f,
                "{} {} {} {} {} {}",
                n.hash_algorithm,
                n.flags,
                n.iterations,
                if n.salt.is_empty() {
                    "-".to_string()
                } else {
                    hex(&n.salt)
                },
                base32::encode(&n.next_hashed_owner),
                n.type_bitmap
            ),
            RData::Nsec3Param(p) => write!(
                f,
                "{} {} {} {}",
                p.hash_algorithm,
                p.flags,
                p.iterations,
                if p.salt.is_empty() {
                    "-".to_string()
                } else {
                    hex(&p.salt)
                }
            ),
            RData::Unknown { rtype, data } => write!(f, "\\# TYPE{} {}", rtype, hex(data)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;

    fn sample_key() -> Dnskey {
        Dnskey {
            flags: DNSKEY_FLAG_ZONE | DNSKEY_FLAG_SEP,
            protocol: 3,
            algorithm: 8,
            public_key: vec![0xAA; 32],
        }
    }

    #[test]
    fn dnskey_flags() {
        let mut k = sample_key();
        assert!(k.is_zone_key());
        assert!(k.is_sep());
        assert!(!k.is_revoked());
        k.flags |= DNSKEY_FLAG_REVOKE;
        assert!(k.is_revoked());
    }

    #[test]
    fn key_tag_is_deterministic_and_flag_sensitive() {
        let k = sample_key();
        let tag1 = k.key_tag();
        assert_eq!(tag1, sample_key().key_tag());
        let mut revoked = sample_key();
        revoked.flags |= DNSKEY_FLAG_REVOKE;
        assert_ne!(tag1, revoked.key_tag(), "revoking changes the key tag");
    }

    #[test]
    fn key_tag_known_vector() {
        // Deterministic regression vector for the RFC 4034 App. B checksum.
        let k = Dnskey {
            flags: 0x0101,
            protocol: 3,
            algorithm: 8,
            public_key: vec![1, 2, 3, 4],
        };
        // rdata = 01 01 03 08 01 02 03 04
        // sum = 0x0101 + 0x0308 + 0x0102 + 0x0304 = 0x080F; no carry.
        assert_eq!(k.key_tag(), 0x080F);
    }

    #[test]
    fn rrsig_window() {
        let sig = Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 300,
            expiration: 2000,
            inception: 1000,
            key_tag: 42,
            signer_name: name("example.com"),
            signature: vec![1, 2, 3],
        };
        assert!(!sig.is_current(999));
        assert!(sig.is_current(1000));
        assert!(sig.is_current(1500));
        assert!(sig.is_current(2000));
        assert!(!sig.is_current(2001));
    }

    #[test]
    fn rrsig_signed_prefix_excludes_signature() {
        let sig = Rrsig {
            type_covered: RrType::A,
            algorithm: 8,
            labels: 2,
            original_ttl: 300,
            expiration: 2000,
            inception: 1000,
            key_tag: 42,
            signer_name: name("example.com"),
            signature: vec![1, 2, 3],
        };
        let wire = RData::Rrsig(sig.clone()).to_wire();
        let prefix = sig.signed_prefix();
        assert_eq!(&wire[..prefix.len()], &prefix[..]);
        assert_eq!(&wire[prefix.len()..], &[1, 2, 3]);
    }

    #[test]
    fn canonical_wire_lowercases_names() {
        let rd = RData::Ns(name("NS1.Example.COM"));
        let canon = rd.canonical_wire();
        let plain = rd.to_wire();
        assert_ne!(canon, plain);
        assert_eq!(canon, name("ns1.example.com").canonical_wire());
    }

    #[test]
    fn nsec3_optout_flag() {
        let mut n3 = Nsec3 {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
            next_hashed_owner: vec![0; 20],
            type_bitmap: TypeBitmap::new(),
        };
        assert!(!n3.opt_out());
        n3.flags |= NSEC3_FLAG_OPT_OUT;
        assert!(n3.opt_out());
    }

    #[test]
    fn soa_wire_layout() {
        let soa = Soa {
            mname: name("ns1.example."),
            rname: name("hostmaster.example."),
            serial: 1,
            refresh: 2,
            retry: 3,
            expire: 4,
            minimum: 5,
        };
        let wire = RData::Soa(soa).to_wire();
        // mname(13) + rname(20) + 5 * 4 bytes
        assert_eq!(wire.len(), 13 + 20 + 20);
        assert_eq!(&wire[wire.len() - 4..], &[0, 0, 0, 5]);
    }

    #[test]
    fn display_forms() {
        let ds = RData::Ds(Ds {
            key_tag: 12345,
            algorithm: 13,
            digest_type: 2,
            digest: vec![0xde, 0xad],
        });
        assert_eq!(ds.to_string(), "12345 13 2 DEAD");
        let n3p = RData::Nsec3Param(Nsec3Param {
            hash_algorithm: 1,
            flags: 0,
            iterations: 10,
            salt: vec![],
        });
        assert_eq!(n3p.to_string(), "1 0 10 -");
    }
}
