//! DNS messages: header, question, and the three record sections
//! (RFC 1035 §4), plus EDNS(0) with the DO bit (RFC 6891, RFC 4035 §3).

use serde::{Deserialize, Serialize};

use crate::name::Name;
use crate::rdata::RData;
use crate::rrset::{RRset, Record};
use crate::types::{Rcode, RrClass, RrType};

/// Header flag bits (RFC 1035 §4.1.1 / RFC 4035 §3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Flags {
    /// Query/response.
    pub qr: bool,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncated.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Authentic data (set by validating resolvers).
    pub ad: bool,
    /// Checking disabled.
    pub cd: bool,
}

/// The question section entry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Question {
    pub qname: Name,
    pub qtype: RrType,
    pub qclass: RrClass,
}

impl Question {
    pub fn new(qname: Name, qtype: RrType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RrClass::In,
        }
    }
}

/// EDNS(0) pseudo-section state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Edns {
    /// Advertised UDP payload size.
    pub udp_size: u16,
    /// DNSSEC OK bit (RFC 4035 §3.2.1): request DNSSEC records.
    pub dnssec_ok: bool,
}

impl Default for Edns {
    fn default() -> Self {
        Edns {
            udp_size: 4096,
            dnssec_ok: true,
        }
    }
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    pub id: u16,
    pub flags: Flags,
    pub rcode: Rcode,
    pub question: Option<Question>,
    pub answers: Vec<Record>,
    pub authorities: Vec<Record>,
    pub additionals: Vec<Record>,
    pub edns: Option<Edns>,
}

impl Message {
    /// Builds a DNSSEC-aware query (DO bit set) for `qname`/`qtype`.
    pub fn query(id: u16, qname: Name, qtype: RrType) -> Self {
        Message {
            id,
            flags: Flags {
                rd: false,
                ..Flags::default()
            },
            rcode: Rcode::NoError,
            question: Some(Question::new(qname, qtype)),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: Some(Edns::default()),
        }
    }

    /// Starts a response to this query, copying id/question/EDNS.
    pub fn response(&self) -> Self {
        Message {
            id: self.id,
            flags: Flags {
                qr: true,
                rd: self.flags.rd,
                ..Flags::default()
            },
            rcode: Rcode::NoError,
            question: self.question.clone(),
            answers: Vec::new(),
            authorities: Vec::new(),
            additionals: Vec::new(),
            edns: self.edns,
        }
    }

    /// True if the query asked for DNSSEC records.
    pub fn dnssec_ok(&self) -> bool {
        self.edns.map(|e| e.dnssec_ok).unwrap_or(false)
    }

    /// Groups a record section into RRsets, preserving first-seen order.
    pub fn rrsets_in(records: &[Record]) -> Vec<RRset> {
        let mut out: Vec<RRset> = Vec::new();
        for r in records {
            if let Some(set) = out
                .iter_mut()
                .find(|s| s.name == r.name && s.rtype == r.rtype())
            {
                set.ttl = set.ttl.min(r.ttl);
                set.rdatas.push(r.rdata.clone());
            } else {
                out.push(RRset::singleton(r.name.clone(), r.ttl, r.rdata.clone()));
            }
        }
        out
    }

    /// All answer RRsets.
    pub fn answer_rrsets(&self) -> Vec<RRset> {
        Self::rrsets_in(&self.answers)
    }

    /// All authority RRsets.
    pub fn authority_rrsets(&self) -> Vec<RRset> {
        Self::rrsets_in(&self.authorities)
    }

    /// Finds the answer RRset with the given name and type.
    pub fn find_answer(&self, name: &Name, rtype: RrType) -> Option<RRset> {
        self.answer_rrsets()
            .into_iter()
            .find(|s| &s.name == name && s.rtype == rtype)
    }

    /// RRSIG records in a section covering `rtype` at `name`.
    pub fn sigs_covering(records: &[Record], name: &Name, rtype: RrType) -> Vec<Record> {
        records
            .iter()
            .filter(|r| {
                &r.name == name && matches!(&r.rdata, RData::Rrsig(s) if s.type_covered == rtype)
            })
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use crate::rdata::Rrsig;
    use std::net::Ipv4Addr;

    #[test]
    fn query_sets_do_bit() {
        let q = Message::query(7, name("example.com"), RrType::A);
        assert!(q.dnssec_ok());
        assert_eq!(q.question.as_ref().unwrap().qtype, RrType::A);
        assert!(!q.flags.qr);
    }

    #[test]
    fn response_copies_identity() {
        let q = Message::query(99, name("example.com"), RrType::Soa);
        let r = q.response();
        assert_eq!(r.id, 99);
        assert!(r.flags.qr);
        assert_eq!(r.question, q.question);
        assert!(r.dnssec_ok());
    }

    #[test]
    fn rrset_grouping_preserves_order_and_merges() {
        let recs = vec![
            Record::new(name("a.example."), 60, RData::A(Ipv4Addr::new(1, 1, 1, 1))),
            Record::new(name("b.example."), 60, RData::A(Ipv4Addr::new(2, 2, 2, 2))),
            Record::new(name("a.example."), 30, RData::A(Ipv4Addr::new(1, 1, 1, 2))),
        ];
        let sets = Message::rrsets_in(&recs);
        assert_eq!(sets.len(), 2);
        assert_eq!(sets[0].name, name("a.example."));
        assert_eq!(sets[0].len(), 2);
        assert_eq!(sets[0].ttl, 30);
    }

    #[test]
    fn sigs_covering_filters_by_type() {
        let sig = |covered: RrType| {
            Record::new(
                name("a.example."),
                60,
                RData::Rrsig(Rrsig {
                    type_covered: covered,
                    algorithm: 8,
                    labels: 2,
                    original_ttl: 60,
                    expiration: 10,
                    inception: 0,
                    key_tag: 1,
                    signer_name: name("example."),
                    signature: vec![],
                }),
            )
        };
        let recs = vec![sig(RrType::A), sig(RrType::Ns)];
        let found = Message::sigs_covering(&recs, &name("a.example."), RrType::A);
        assert_eq!(found.len(), 1);
        let none = Message::sigs_covering(&recs, &name("b.example."), RrType::A);
        assert!(none.is_empty());
    }
}
