//! A mutable DNS zone: the unit ZReplicator constructs, BIND-style tools
//! sign, and the authoritative server serves.
//!
//! Records are stored per owner name in canonical order so NSEC chains and
//! canonical traversals fall out of iteration order.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use crate::name::Name;
use crate::rdata::{RData, Soa};
use crate::rrset::{RRset, Record};
use crate::types::RrType;

/// Process-global generation source. Every mutation of any zone draws a
/// fresh stamp from here, so a given stamp value corresponds to exactly one
/// logical zone content: two zones can share a stamp only by cloning (which
/// copies the content along with it).
static GENERATION: AtomicU64 = AtomicU64::new(1);

fn fresh_generation() -> u64 {
    GENERATION.fetch_add(1, Ordering::Relaxed)
}

/// A DNS zone rooted at `apex`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Zone {
    apex: Name,
    /// name → (type code → RRset), names in canonical order.
    nodes: BTreeMap<Name, BTreeMap<u16, RRset>>,
    /// Mutation stamp: bumped (to a globally fresh value) by every mutating
    /// method. Answer caches key on it; stamp equality implies content
    /// equality. Excluded from `PartialEq` and serialization — a
    /// deserialized zone gets a fresh stamp.
    #[serde(skip, default = "fresh_generation")]
    generation: u64,
}

/// Equality ignores the generation stamp: two zones are equal when their
/// contents are (replica deduplication in the signing pipeline depends on
/// this).
impl PartialEq for Zone {
    fn eq(&self, other: &Self) -> bool {
        self.apex == other.apex && self.nodes == other.nodes
    }
}

impl Eq for Zone {}

impl Zone {
    /// Creates an empty zone rooted at `apex`.
    pub fn new(apex: Name) -> Self {
        Zone {
            apex,
            nodes: BTreeMap::new(),
            generation: fresh_generation(),
        }
    }

    /// The zone's current mutation stamp. Monotonically fresh across every
    /// mutation process-wide; equal stamps imply equal content.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Records that the zone content changed.
    fn touch(&mut self) {
        self.generation = fresh_generation();
    }

    /// The zone apex (owner of SOA and NS).
    pub fn apex(&self) -> &Name {
        &self.apex
    }

    /// True if `name` is at or below the apex.
    pub fn contains_name(&self, name: &Name) -> bool {
        name.is_subdomain_of(&self.apex)
    }

    /// Adds a record, merging into an existing RRset when present.
    ///
    /// # Panics
    /// Panics if the record's owner lies outside the zone — that is always a
    /// construction bug in the caller.
    pub fn add(&mut self, record: Record) {
        assert!(
            self.contains_name(&record.name),
            "record {} outside zone {}",
            record.name,
            self.apex
        );
        self.touch();
        let node = self.nodes.entry(record.name.clone()).or_default();
        let entry = node.entry(record.rtype().code());
        match entry {
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let set = e.get_mut();
                set.ttl = set.ttl.min(record.ttl);
                if !set.rdatas.contains(&record.rdata) {
                    set.rdatas.push(record.rdata);
                }
            }
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(RRset::singleton(record.name, record.ttl, record.rdata));
            }
        }
    }

    /// Replaces (or inserts) a whole RRset.
    pub fn put_rrset(&mut self, rrset: RRset) {
        assert!(self.contains_name(&rrset.name));
        self.touch();
        self.nodes
            .entry(rrset.name.clone())
            .or_default()
            .insert(rrset.rtype.code(), rrset);
    }

    /// Looks up the RRset at `name` of type `rtype`.
    pub fn get(&self, name: &Name, rtype: RrType) -> Option<&RRset> {
        self.nodes.get(name)?.get(&rtype.code())
    }

    /// Mutable lookup. Conservatively counts as a mutation (the caller can
    /// rewrite the RRset through the returned reference).
    pub fn get_mut(&mut self, name: &Name, rtype: RrType) -> Option<&mut RRset> {
        let set = self.nodes.get_mut(name)?.get_mut(&rtype.code());
        if set.is_some() {
            self.generation = fresh_generation();
        }
        set
    }

    /// Removes and returns an RRset.
    pub fn remove(&mut self, name: &Name, rtype: RrType) -> Option<RRset> {
        let node = self.nodes.get_mut(name)?;
        let removed = node.remove(&rtype.code());
        if node.is_empty() {
            self.nodes.remove(name);
        }
        if removed.is_some() {
            self.touch();
        }
        removed
    }

    /// Removes a single RDATA from an RRset, dropping the set when emptied.
    /// Returns true if something was removed.
    pub fn remove_rdata(&mut self, name: &Name, rdata: &RData) -> bool {
        let rtype = rdata.rtype();
        let Some(set) = self.get_mut(name, rtype) else {
            return false;
        };
        let before = set.rdatas.len();
        set.rdatas.retain(|rd| rd != rdata);
        let removed = set.rdatas.len() < before;
        if set.rdatas.is_empty() {
            self.remove(name, rtype);
        }
        removed
    }

    /// True if any records exist at `name` (of any type).
    pub fn has_name(&self, name: &Name) -> bool {
        self.nodes.contains_key(name)
    }

    /// All owner names, canonical order.
    pub fn names(&self) -> impl Iterator<Item = &Name> {
        self.nodes.keys()
    }

    /// All RRsets, canonical owner order, ascending type code within a name.
    pub fn rrsets(&self) -> impl Iterator<Item = &RRset> {
        self.nodes.values().flat_map(|n| n.values())
    }

    /// Types present at `name`.
    pub fn types_at(&self, name: &Name) -> Vec<RrType> {
        self.nodes
            .get(name)
            .map(|n| n.keys().map(|&c| RrType::from_code(c)).collect())
            .unwrap_or_default()
    }

    /// The SOA RDATA at the apex, if present.
    pub fn soa(&self) -> Option<&Soa> {
        let set = self.get(&self.apex, RrType::Soa)?;
        match set.rdatas.first() {
            Some(RData::Soa(soa)) => Some(soa),
            _ => None,
        }
    }

    /// Increments the SOA serial (zone-change bookkeeping, like
    /// `dnssec-signzone -N INCREMENT`).
    pub fn bump_serial(&mut self) {
        let apex = self.apex.clone();
        if let Some(set) = self.get_mut(&apex, RrType::Soa) {
            if let Some(RData::Soa(soa)) = set.rdatas.first_mut() {
                soa.serial = soa.serial.wrapping_add(1);
            }
        }
    }

    /// Names owning an NS RRset below the apex: the zone's delegation points.
    pub fn delegation_names(&self) -> Vec<Name> {
        self.nodes
            .iter()
            .filter(|(name, node)| *name != &self.apex && node.contains_key(&RrType::Ns.code()))
            .map(|(name, _)| name.clone())
            .collect()
    }

    /// Returns the deepest delegation point that `name` falls under, if any.
    ///
    /// Walks `name`'s ancestor chain toward the apex instead of scanning
    /// every owner name: each step is one `BTreeMap` lookup, so the cost is
    /// O(depth · log n) rather than O(n).
    pub fn delegation_covering(&self, name: &Name) -> Option<Name> {
        let mut cur = if name.is_subdomain_of(&self.apex) {
            Some(name.clone())
        } else {
            None
        };
        while let Some(c) = cur {
            if c == self.apex {
                break;
            }
            if let Some(node) = self.nodes.get(&c) {
                if node.contains_key(&RrType::Ns.code()) {
                    return Some(c);
                }
            }
            cur = c.parent();
        }
        None
    }

    /// True if any owner name in the zone is strictly below `name`.
    ///
    /// Owner names are kept in canonical order, where a name's descendants
    /// sort as a contiguous run immediately after the name itself; one
    /// range probe replaces a full scan.
    pub fn has_descendant(&self, name: &Name) -> bool {
        self.nodes
            .range::<Name, _>((Bound::Excluded(name), Bound::Unbounded))
            .next()
            .map(|(n, _)| n.is_strict_subdomain_of(name))
            .unwrap_or(false)
    }

    /// True if `name` sits below a delegation point (glue / occluded data).
    pub fn is_below_cut(&self, name: &Name) -> bool {
        self.delegation_covering(name)
            .map(|cut| name.is_strict_subdomain_of(&cut))
            .unwrap_or(false)
    }

    /// Drops every RRset of the given type anywhere in the zone.
    pub fn strip_type(&mut self, rtype: RrType) {
        let code = rtype.code();
        self.touch();
        self.nodes.retain(|_, node| {
            node.remove(&code);
            !node.is_empty()
        });
    }

    /// Drops all DNSSEC-generated material (RRSIG, NSEC, NSEC3, NSEC3PARAM),
    /// returning the zone to its unsigned form. DNSKEY and DS records are
    /// kept: they are operator-managed inputs, not signer outputs.
    pub fn strip_dnssec(&mut self) {
        for t in [
            RrType::Rrsig,
            RrType::Nsec,
            RrType::Nsec3,
            RrType::Nsec3Param,
        ] {
            self.strip_type(t);
        }
    }

    /// Authoritative owner names that must appear in the denial-of-existence
    /// chain: everything not occluded below a delegation cut.
    pub fn authoritative_names(&self) -> Vec<Name> {
        self.names()
            .filter(|n| !self.is_below_cut(n))
            .cloned()
            .collect()
    }

    /// Total number of records (not RRsets).
    pub fn record_count(&self) -> usize {
        self.rrsets().map(|s| s.len()).sum()
    }

    /// Renders the zone in a master-file-like presentation, canonical order.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for set in self.rrsets() {
            out.push_str(&set.to_string());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::name::name;
    use std::net::Ipv4Addr;

    fn apex_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        z.add(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z
    }

    #[test]
    fn add_and_get() {
        let z = apex_zone();
        assert!(z.soa().is_some());
        assert_eq!(z.get(&name("example.com"), RrType::Ns).unwrap().len(), 1);
        assert!(z.get(&name("example.com"), RrType::A).is_none());
    }

    #[test]
    fn add_merges_and_dedups() {
        let mut z = apex_zone();
        let rec = Record::new(
            name("w.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        );
        z.add(rec.clone());
        z.add(rec);
        assert_eq!(z.get(&name("w.example.com"), RrType::A).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "outside zone")]
    fn add_outside_zone_panics() {
        let mut z = apex_zone();
        z.add(Record::new(
            name("other.org"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        ));
    }

    #[test]
    fn remove_rdata_drops_empty_set() {
        let mut z = apex_zone();
        let rd = RData::A(Ipv4Addr::new(192, 0, 2, 1));
        assert!(z.remove_rdata(&name("ns1.example.com"), &rd));
        assert!(!z.has_name(&name("ns1.example.com")));
        assert!(!z.remove_rdata(&name("ns1.example.com"), &rd));
    }

    #[test]
    fn delegation_detection() {
        let mut z = apex_zone();
        z.add(Record::new(
            name("child.example.com"),
            3600,
            RData::Ns(name("ns1.child.example.com")),
        ));
        z.add(Record::new(
            name("ns1.child.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        assert_eq!(z.delegation_names(), vec![name("child.example.com")]);
        assert_eq!(
            z.delegation_covering(&name("x.child.example.com")),
            Some(name("child.example.com"))
        );
        assert!(z.is_below_cut(&name("ns1.child.example.com")));
        assert!(!z.is_below_cut(&name("child.example.com")));
        // Apex NS is not a delegation.
        assert!(!z.is_below_cut(&name("ns1.example.com")));
        let auth = z.authoritative_names();
        assert!(auth.contains(&name("child.example.com")));
        assert!(!auth.contains(&name("ns1.child.example.com")));
    }

    #[test]
    fn names_iterate_canonically() {
        let mut z = apex_zone();
        z.add(Record::new(
            name("z.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 1)),
        ));
        z.add(Record::new(
            name("a.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 1, 1, 2)),
        ));
        let names: Vec<_> = z.names().cloned().collect();
        // Apex first, then a, then ns1, then z (canonical order).
        assert_eq!(names[0], name("example.com"));
        let pos = |n: &Name| names.iter().position(|x| x == n).unwrap();
        assert!(pos(&name("a.example.com")) < pos(&name("ns1.example.com")));
        assert!(pos(&name("ns1.example.com")) < pos(&name("z.example.com")));
    }

    #[test]
    fn bump_serial() {
        let mut z = apex_zone();
        z.bump_serial();
        assert_eq!(z.soa().unwrap().serial, 2);
    }

    #[test]
    fn strip_type_removes_everywhere() {
        let mut z = apex_zone();
        z.strip_type(RrType::A);
        assert!(!z.has_name(&name("ns1.example.com")));
        assert!(z.soa().is_some());
    }

    #[test]
    fn every_mutation_bumps_the_generation() {
        let mut z = apex_zone();
        let mut last = z.generation();
        let mut expect_bump = |z: &Zone, last: &mut u64, what: &str| {
            assert!(z.generation() > *last, "{what} must bump the generation");
            *last = z.generation();
        };
        z.add(Record::new(
            name("w.example.com"),
            60,
            RData::A(Ipv4Addr::new(9, 9, 9, 9)),
        ));
        expect_bump(&z, &mut last, "add");
        z.put_rrset(RRset::singleton(
            name("w.example.com"),
            60,
            RData::A(Ipv4Addr::new(9, 9, 9, 10)),
        ));
        expect_bump(&z, &mut last, "put_rrset");
        z.get_mut(&name("w.example.com"), RrType::A).unwrap();
        expect_bump(&z, &mut last, "get_mut");
        z.bump_serial();
        expect_bump(&z, &mut last, "bump_serial");
        assert!(z.remove_rdata(
            &name("w.example.com"),
            &RData::A(Ipv4Addr::new(9, 9, 9, 10))
        ));
        expect_bump(&z, &mut last, "remove_rdata");
        z.strip_type(RrType::Ns);
        expect_bump(&z, &mut last, "strip_type");
        // Pure reads leave the stamp alone.
        let _ = z.get(&name("example.com"), RrType::Soa);
        let _ = z.has_descendant(&name("example.com"));
        assert_eq!(z.generation(), last);
        // Misses through the mutable accessors leave it alone too.
        assert!(z.get_mut(&name("missing.example.com"), RrType::A).is_none());
        assert!(z.remove(&name("missing.example.com"), RrType::A).is_none());
        assert_eq!(z.generation(), last);
    }

    #[test]
    fn clones_share_the_stamp_and_equality_ignores_it() {
        let z = apex_zone();
        let c = z.clone();
        assert_eq!(c.generation(), z.generation());
        let mut d = z.clone();
        d.bump_serial();
        d.bump_serial();
        // Serial differs → unequal; rebuild equal content under a fresh
        // stamp → equal despite different generations.
        assert_ne!(d, z);
        let e = apex_zone();
        assert_ne!(e.generation(), z.generation());
        assert_eq!(e, z);
    }

    #[test]
    fn deserialized_zone_gets_a_fresh_stamp() {
        let z = apex_zone();
        let json = serde_json::to_string(&z).unwrap();
        let back: Zone = serde_json::from_str(&json).unwrap();
        assert_eq!(back, z);
        assert_ne!(back.generation(), z.generation());
    }

    #[test]
    fn has_descendant_matches_linear_scan() {
        let mut z = apex_zone();
        z.add(Record::new(
            name("a.ent.example.com"),
            60,
            RData::A(Ipv4Addr::new(1, 2, 3, 4)),
        ));
        for probe in [
            "example.com",
            "ent.example.com",
            "a.ent.example.com",
            "ns1.example.com",
            "zzz.example.com",
            "b.ent.example.com",
        ] {
            let p = name(probe);
            let naive = z.names().any(|n| n.is_strict_subdomain_of(&p));
            assert_eq!(z.has_descendant(&p), naive, "disagree on {probe}");
        }
    }
}
