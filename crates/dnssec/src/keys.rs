//! Key material: generation, roles, lifecycle timers, and key-file naming
//! compatible with BIND's `K<zone>+<alg>+<tag>` convention.
//!
//! **Crypto substitution (see DESIGN.md §4):** key material is random bytes
//! of the algorithm-appropriate length; signatures are keyed hashes over the
//! canonical signing payload. Every misconfiguration class the paper studies
//! (windows, tags, flags, algorithms, lengths, signer names) is checked on
//! metadata and therefore behaves identically to real asymmetric crypto.

use rand::Rng;
use serde::{Deserialize, Serialize};

use ddx_dns::{Dnskey, Name, DNSKEY_FLAG_REVOKE, DNSKEY_FLAG_SEP, DNSKEY_FLAG_ZONE};

use crate::algorithm::Algorithm;

/// The role a key plays in the zone's signing setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum KeyRole {
    /// Key-signing key: SEP flag set, signs the DNSKEY RRset, referenced by
    /// the parent's DS.
    Ksk,
    /// Zone-signing key: signs everything else.
    Zsk,
}

impl KeyRole {
    /// DNSKEY flags value for a fresh key of this role.
    pub fn flags(self) -> u16 {
        match self {
            KeyRole::Ksk => DNSKEY_FLAG_ZONE | DNSKEY_FLAG_SEP,
            KeyRole::Zsk => DNSKEY_FLAG_ZONE,
        }
    }
}

/// A generated key pair with its lifecycle timers (`dnssec-settime` fields).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyPair {
    /// The zone this key belongs to.
    pub zone: Name,
    /// Public-facing DNSKEY RDATA.
    pub dnskey: Dnskey,
    /// Declared role (KSK/ZSK). The wire only carries flags; the role is
    /// operational metadata, like BIND's key files.
    pub role: KeyRole,
    /// Key size in bits as requested at generation time.
    pub key_bits: u16,
    /// Publication time (seconds since simulation epoch).
    pub publish: u32,
    /// Activation time.
    pub activate: u32,
    /// Retirement time (`dnssec-settime -I`): the key stays published but
    /// stops signing; `None` while the key signs.
    #[serde(default)]
    pub retire_at: Option<u32>,
    /// Deletion time (`dnssec-settime -D`); `None` while the key lives.
    pub delete_at: Option<u32>,
}

impl KeyPair {
    /// Generates a fresh key pair.
    pub fn generate<R: Rng + ?Sized>(
        rng: &mut R,
        zone: Name,
        algorithm: Algorithm,
        key_bits: u16,
        role: KeyRole,
        now: u32,
    ) -> Self {
        let material_len = match algorithm {
            Algorithm::EcdsaP256Sha256 => 32,
            Algorithm::EcdsaP384Sha384 => 48,
            Algorithm::Ed25519 => 32,
            Algorithm::Ed448 => 57,
            // RSA and DSA families carry keyBits/8 octets of material.
            _ => usize::from(key_bits / 8),
        };
        let mut public_key = vec![0u8; material_len];
        rng.fill(&mut public_key[..]);
        KeyPair {
            zone,
            dnskey: Dnskey {
                flags: role.flags(),
                protocol: 3,
                algorithm: algorithm.code(),
                public_key,
            },
            role,
            key_bits,
            publish: now,
            activate: now,
            retire_at: None,
            delete_at: None,
        }
    }

    /// The key's algorithm; `None` if the DNSKEY carries an unmodeled code
    /// (possible after deliberate error injection).
    pub fn algorithm(&self) -> Option<Algorithm> {
        Algorithm::from_code(self.dnskey.algorithm)
    }

    /// RFC 4034 Appendix B key tag.
    pub fn key_tag(&self) -> u16 {
        self.dnskey.key_tag()
    }

    /// Sets the RFC 5011 REVOKE bit. Note this changes the key tag.
    pub fn revoke(&mut self) {
        self.dnskey.flags |= DNSKEY_FLAG_REVOKE;
    }

    /// True once the REVOKE bit is set.
    pub fn is_revoked(&self) -> bool {
        self.dnskey.is_revoked()
    }

    /// Marks the key for deletion at `when` (`dnssec-settime -D`).
    pub fn schedule_delete(&mut self, when: u32) {
        self.delete_at = Some(when);
    }

    /// True if the key should be published in the zone at time `now`.
    pub fn is_published(&self, now: u32) -> bool {
        self.publish <= now && self.delete_at.map(|d| now < d).unwrap_or(true)
    }

    /// True if the key may produce signatures at time `now`.
    pub fn is_active(&self, now: u32) -> bool {
        self.activate <= now
            && self.retire_at.map(|r| now < r).unwrap_or(true)
            && self.delete_at.map(|d| now < d).unwrap_or(true)
    }

    /// Marks the key as retired at `when`: it keeps being published (so
    /// cached signatures still validate) but produces no new signatures
    /// (`dnssec-settime -I`).
    pub fn schedule_retire(&mut self, when: u32) {
        self.retire_at = Some(when);
    }

    /// BIND-style key file stem, e.g. `Kexample.com.+008+12345`.
    pub fn file_stem(&self) -> String {
        format!(
            "K{}+{:03}+{:05}",
            self.zone.to_string().to_ascii_lowercase(),
            self.dnskey.algorithm,
            self.key_tag()
        )
    }
}

/// A keyring: the set of keys an operator manages for one zone.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeyRing {
    keys: Vec<KeyPair>,
}

impl KeyRing {
    pub fn new() -> Self {
        KeyRing::default()
    }

    pub fn add(&mut self, key: KeyPair) {
        self.keys.push(key);
    }

    pub fn keys(&self) -> &[KeyPair] {
        &self.keys
    }

    pub fn keys_mut(&mut self) -> &mut [KeyPair] {
        &mut self.keys
    }

    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Removes keys matching a predicate, returning how many were removed.
    pub fn retain<F: FnMut(&KeyPair) -> bool>(&mut self, f: F) -> usize {
        let before = self.keys.len();
        self.keys.retain(f);
        before - self.keys.len()
    }

    /// Published keys at `now`.
    pub fn published(&self, now: u32) -> Vec<&KeyPair> {
        self.keys.iter().filter(|k| k.is_published(now)).collect()
    }

    /// Active signing keys of a role at `now`, excluding revoked keys.
    pub fn active(&self, role: KeyRole, now: u32) -> Vec<&KeyPair> {
        self.keys
            .iter()
            .filter(|k| k.role == role && k.is_active(now) && !k.is_revoked())
            .collect()
    }

    /// Looks a key up by its current tag.
    pub fn by_tag(&self, tag: u16) -> Option<&KeyPair> {
        self.keys.iter().find(|k| k.key_tag() == tag)
    }

    /// Mutable lookup by tag.
    pub fn by_tag_mut(&mut self, tag: u16) -> Option<&mut KeyPair> {
        self.keys.iter_mut().find(|k| k.key_tag() == tag)
    }

    /// Distinct algorithms present among published, non-revoked zone keys.
    pub fn algorithms(&self, now: u32) -> Vec<u8> {
        let mut algos: Vec<u8> = self
            .keys
            .iter()
            .filter(|k| k.is_published(now) && !k.is_revoked())
            .map(|k| k.dnskey.algorithm)
            .collect();
        algos.sort_unstable();
        algos.dedup();
        algos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn gen(role: KeyRole) -> KeyPair {
        KeyPair::generate(
            &mut rng(),
            name("example.com"),
            Algorithm::RsaSha256,
            2048,
            role,
            100,
        )
    }

    #[test]
    fn roles_set_flags() {
        assert!(gen(KeyRole::Ksk).dnskey.is_sep());
        assert!(!gen(KeyRole::Zsk).dnskey.is_sep());
        assert!(gen(KeyRole::Zsk).dnskey.is_zone_key());
    }

    #[test]
    fn generation_is_seeded_deterministic() {
        assert_eq!(gen(KeyRole::Ksk).dnskey, gen(KeyRole::Ksk).dnskey);
    }

    #[test]
    fn rsa_key_material_matches_bits() {
        let k = KeyPair::generate(
            &mut rng(),
            name("example.com"),
            Algorithm::RsaSha256,
            1024,
            KeyRole::Zsk,
            0,
        );
        assert_eq!(k.dnskey.public_key.len(), 128);
        assert_eq!(k.dnskey.key_bits(), 1024);
    }

    #[test]
    fn revoke_changes_tag() {
        let mut k = gen(KeyRole::Ksk);
        let tag = k.key_tag();
        k.revoke();
        assert!(k.is_revoked());
        assert_ne!(k.key_tag(), tag);
    }

    #[test]
    fn lifecycle_windows() {
        let mut k = gen(KeyRole::Zsk);
        assert!(!k.is_published(99));
        assert!(k.is_published(100));
        assert!(k.is_active(100));
        k.schedule_delete(200);
        assert!(k.is_published(199));
        assert!(!k.is_published(200));
        assert!(!k.is_active(200));
    }

    #[test]
    fn file_stem_format() {
        let k = gen(KeyRole::Ksk);
        let stem = k.file_stem();
        assert!(stem.starts_with("Kexample.com.+008+"), "{stem}");
        assert_eq!(stem.len(), "Kexample.com.+008+".len() + 5);
    }

    #[test]
    fn keyring_queries() {
        let mut ring = KeyRing::new();
        let ksk = gen(KeyRole::Ksk);
        let mut zsk = KeyPair::generate(
            &mut StdRng::seed_from_u64(2),
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Zsk,
            100,
        );
        let ksk_tag = ksk.key_tag();
        ring.add(ksk);
        ring.add(zsk.clone());
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.active(KeyRole::Ksk, 100).len(), 1);
        assert_eq!(ring.by_tag(ksk_tag).unwrap().role, KeyRole::Ksk);
        assert_eq!(ring.algorithms(100), vec![8, 13]);
        // Revoked keys drop out of `active` but stay published.
        zsk.revoke();
        let tag = ring.keys()[1].key_tag();
        ring.by_tag_mut(tag).unwrap().revoke();
        assert!(ring.active(KeyRole::Zsk, 100).is_empty());
        assert_eq!(ring.published(100).len(), 2);
    }
}
