//! Whole-zone signing: the in-process model of `dnssec-signzone`.
//!
//! Given a zone's plain data and a [`KeyRing`], the signer publishes the
//! DNSKEY RRset, builds the configured denial-of-existence chain, and signs
//! every authoritative RRset with the appropriate keys per algorithm —
//! KSKs over the DNSKEY RRset, ZSKs over everything else, falling back
//! across roles the way BIND does. Delegation NS sets and glue are left
//! unsigned (RFC 4035 §2.2).

use ddx_dns::{Name, RData, RRset, Record, RrType, Zone};

use crate::cache::SigCache;
use crate::denial::{build_nsec3_chain, build_nsec_chain, DenialMode};
use crate::keys::{KeyPair, KeyRing, KeyRole};
use crate::sign::{sign_rrset, sign_rrset_cached, SignOptions};

/// TTL used for published DNSKEY RRsets.
pub const DNSKEY_TTL: u32 = 3600;

/// Configuration for one signing pass.
#[derive(Debug, Clone)]
pub struct SignerConfig {
    pub denial: DenialMode,
    pub inception: u32,
    pub expiration: u32,
}

impl SignerConfig {
    /// A conventional config: NSEC, 30-day window starting an hour ago.
    pub fn nsec_at(now: u32) -> Self {
        SignerConfig {
            denial: DenialMode::Nsec,
            inception: now.saturating_sub(3600),
            expiration: now + 30 * 86_400,
        }
    }

    /// NSEC3 variant of [`SignerConfig::nsec_at`].
    pub fn nsec3_at(now: u32, cfg: crate::nsec3::Nsec3Config) -> Self {
        SignerConfig {
            denial: DenialMode::Nsec3(cfg),
            inception: now.saturating_sub(3600),
            expiration: now + 30 * 86_400,
        }
    }

    fn options(&self) -> SignOptions {
        SignOptions {
            inception: self.inception,
            expiration: self.expiration,
        }
    }
}

/// Signing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SignError {
    /// The key ring holds no keys publishable at the signing time.
    NoPublishableKeys,
}

impl std::fmt::Display for SignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SignError::NoPublishableKeys => write!(f, "no publishable keys in key ring"),
        }
    }
}

impl std::error::Error for SignError {}

/// Picks the signer for ordinary zone data of a given algorithm: the active
/// ZSK if one exists, otherwise the active KSK (BIND behaviour when a zone
/// runs with a single key).
fn data_signer(ring: &KeyRing, algorithm: u8, now: u32) -> Option<&KeyPair> {
    ring.active(KeyRole::Zsk, now)
        .into_iter()
        .find(|k| k.dnskey.algorithm == algorithm)
        .or_else(|| {
            ring.active(KeyRole::Ksk, now)
                .into_iter()
                .find(|k| k.dnskey.algorithm == algorithm)
        })
}

/// Picks the signer for the DNSKEY RRset of a given algorithm: the active
/// KSK if one exists, otherwise the active ZSK.
fn key_signer(ring: &KeyRing, algorithm: u8, now: u32) -> Option<&KeyPair> {
    ring.active(KeyRole::Ksk, now)
        .into_iter()
        .find(|k| k.dnskey.algorithm == algorithm)
        .or_else(|| {
            ring.active(KeyRole::Zsk, now)
                .into_iter()
                .find(|k| k.dnskey.algorithm == algorithm)
        })
}

/// Signs (or re-signs) the whole zone in place.
///
/// Existing DNSSEC material is stripped first; the DNSKEY RRset is rebuilt
/// from the ring's published keys. This mirrors running
/// `dnssec-signzone -S -o <zone>` over the unsigned zone file.
pub fn sign_zone(
    zone: &mut Zone,
    ring: &KeyRing,
    cfg: &SignerConfig,
    now: u32,
) -> Result<(), SignError> {
    sign_zone_impl(zone, ring, cfg, now, None)
}

/// [`sign_zone`] backed by an RRSIG memo cache: RRsets unchanged since the
/// cache last saw them (same canonical bytes, key material, and validity
/// window) reuse their signature bytes instead of recomputing them. Output
/// is byte-identical to [`sign_zone`].
pub fn sign_zone_cached(
    zone: &mut Zone,
    ring: &KeyRing,
    cfg: &SignerConfig,
    now: u32,
    cache: &mut SigCache,
) -> Result<(), SignError> {
    sign_zone_impl(zone, ring, cfg, now, Some(cache))
}

fn sign_zone_impl(
    zone: &mut Zone,
    ring: &KeyRing,
    cfg: &SignerConfig,
    now: u32,
    mut cache: Option<&mut SigCache>,
) -> Result<(), SignError> {
    zone.strip_dnssec();
    zone.strip_type(RrType::Dnskey);
    // Serial bump happens before signing so the SOA signature stays valid
    // (`dnssec-signzone -N INCREMENT`).
    zone.bump_serial();

    let published = ring.published(now);
    if published.is_empty() {
        return Err(SignError::NoPublishableKeys);
    }
    let apex = zone.apex().clone();
    for key in &published {
        zone.add(Record::new(
            apex.clone(),
            DNSKEY_TTL,
            RData::Dnskey(key.dnskey.clone()),
        ));
    }

    match &cfg.denial {
        DenialMode::Nsec => build_nsec_chain(zone),
        DenialMode::Nsec3(n3cfg) => build_nsec3_chain(zone, n3cfg),
    }

    // Algorithms present in the published key set; RFC 6840 §5.11 requires
    // signatures for each of them.
    let mut algorithms: Vec<u8> = published.iter().map(|k| k.dnskey.algorithm).collect();
    algorithms.sort_unstable();
    algorithms.dedup();

    let opts = cfg.options();
    let sign_one = |set: &RRset, key: &KeyPair, cache: &mut Option<&mut SigCache>| match cache
        .as_deref_mut()
    {
        Some(c) => sign_rrset_cached(set, key, opts, c),
        None => sign_rrset(set, key, opts),
    };
    // Signatures are collected over an immutable pass and added afterwards,
    // so no RRset is cloned; addition order matches the previous per-set
    // in-loop adds, keeping RRSIG rdata ordering identical.
    let mut sigs: Vec<Record> = Vec::new();
    for set in zone.rrsets().filter(|set| is_signable(zone, set)) {
        for &alg in &algorithms {
            let signer = if set.rtype == RrType::Dnskey {
                key_signer(ring, alg, now)
            } else {
                data_signer(ring, alg, now)
            };
            if let Some(key) = signer {
                let rrsig = sign_one(set, key, &mut cache);
                sigs.push(Record::new(set.name.clone(), set.ttl, RData::Rrsig(rrsig)));
            }
        }
        // RFC 5011: a published revoked key self-signs the DNSKEY RRset to
        // prove the revocation is authentic.
        if set.rtype == RrType::Dnskey {
            for key in published.iter().filter(|k| k.is_revoked()) {
                let rrsig = sign_one(set, key, &mut cache);
                sigs.push(Record::new(set.name.clone(), set.ttl, RData::Rrsig(rrsig)));
            }
        }
    }
    for sig in sigs {
        zone.add(sig);
    }
    Ok(())
}

/// True for RRsets that receive signatures: authoritative data that is not a
/// delegation NS set and not glue.
fn is_signable(zone: &Zone, set: &RRset) -> bool {
    if set.rtype == RrType::Rrsig {
        return false;
    }
    if zone.is_below_cut(&set.name) {
        return false;
    }
    let at_cut = set.name != *zone.apex() && zone.get(&set.name, RrType::Ns).is_some();
    if at_cut {
        // Only DS (and the denial record) is signed at a cut.
        return matches!(set.rtype, RrType::Ds | RrType::Nsec | RrType::Nsec3);
    }
    true
}

/// Replaces the signatures covering one RRset using a specific key and
/// window — the surgical tool ZReplicator uses to inject, e.g., expired
/// signatures that are otherwise cryptographically valid.
pub fn resign_rrset(zone: &mut Zone, name: &Name, rtype: RrType, key: &KeyPair, opts: SignOptions) {
    let Some(set) = zone.get(name, rtype).cloned() else {
        return;
    };
    remove_sigs_covering(zone, name, rtype);
    let rrsig = sign_rrset(&set, key, opts);
    zone.add(Record::new(name.clone(), set.ttl, RData::Rrsig(rrsig)));
}

/// Removes all RRSIGs at `name` covering `rtype`.
pub fn remove_sigs_covering(zone: &mut Zone, name: &Name, rtype: RrType) {
    if let Some(sigset) = zone.get_mut(name, RrType::Rrsig) {
        sigset
            .rdatas
            .retain(|rd| !matches!(rd, RData::Rrsig(s) if s.type_covered == rtype));
        if sigset.rdatas.is_empty() {
            zone.remove(name, RrType::Rrsig);
        }
    }
}

/// All RRSIGs at `name` covering `rtype`, cloned out of the zone.
pub fn sigs_covering(zone: &Zone, name: &Name, rtype: RrType) -> Vec<ddx_dns::Rrsig> {
    zone.get(name, RrType::Rrsig)
        .map(|set| {
            set.rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Rrsig(s) if s.type_covered == rtype => Some(s.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::nsec3::Nsec3Config;
    use crate::sign::verify_rrset;
    use ddx_dns::{name, Soa};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn base_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        z.add(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        // A delegation with glue.
        z.add(Record::new(
            name("sub.example.com"),
            3600,
            RData::Ns(name("ns1.sub.example.com")),
        ));
        z.add(Record::new(
            name("ns1.sub.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 53)),
        ));
        z
    }

    fn ring(now: u32) -> KeyRing {
        let mut r = KeyRing::new();
        let mut rng = StdRng::seed_from_u64(7);
        r.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Ksk,
            now,
        ));
        r.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Zsk,
            now,
        ));
        r
    }

    const NOW: u32 = 1_000_000;

    #[test]
    fn signed_zone_verifies() {
        let mut zone = base_zone();
        let ring = ring(NOW);
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();

        // DNSKEY set published.
        let dnskeys = zone.get(&name("example.com"), RrType::Dnskey).unwrap();
        assert_eq!(dnskeys.len(), 2);

        // Every signable RRset verifies with some published key.
        let zone_name = name("example.com");
        for set in zone.rrsets().filter(|s| s.rtype != RrType::Rrsig) {
            let sigs = sigs_covering(&zone, &set.name, set.rtype);
            if !is_signable(&zone, set) {
                assert!(
                    sigs.is_empty(),
                    "{} {} must be unsigned",
                    set.name,
                    set.rtype
                );
                continue;
            }
            assert!(!sigs.is_empty(), "{} {} missing RRSIG", set.name, set.rtype);
            for sig in &sigs {
                let key = dnskeys
                    .rdatas
                    .iter()
                    .find_map(|rd| match rd {
                        RData::Dnskey(k) if k.key_tag() == sig.key_tag => Some(k),
                        _ => None,
                    })
                    .expect("signer key is published");
                verify_rrset(set, sig, key, &zone_name, NOW).unwrap();
            }
        }
    }

    #[test]
    fn dnskey_signed_by_ksk_data_by_zsk() {
        let mut zone = base_zone();
        let ring = ring(NOW);
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let ksk_tag = ring.active(KeyRole::Ksk, NOW)[0].key_tag();
        let zsk_tag = ring.active(KeyRole::Zsk, NOW)[0].key_tag();
        let dnskey_sigs = sigs_covering(&zone, &name("example.com"), RrType::Dnskey);
        assert_eq!(dnskey_sigs.len(), 1);
        assert_eq!(dnskey_sigs[0].key_tag, ksk_tag);
        let soa_sigs = sigs_covering(&zone, &name("example.com"), RrType::Soa);
        assert_eq!(soa_sigs[0].key_tag, zsk_tag);
    }

    #[test]
    fn delegation_ns_and_glue_unsigned() {
        let mut zone = base_zone();
        sign_zone(&mut zone, &ring(NOW), &SignerConfig::nsec_at(NOW), NOW).unwrap();
        assert!(sigs_covering(&zone, &name("sub.example.com"), RrType::Ns).is_empty());
        assert!(sigs_covering(&zone, &name("ns1.sub.example.com"), RrType::A).is_empty());
        // But the apex NS set *is* signed.
        assert!(!sigs_covering(&zone, &name("example.com"), RrType::Ns).is_empty());
    }

    #[test]
    fn nsec3_mode_emits_param_and_signs_chain() {
        let mut zone = base_zone();
        let cfg = SignerConfig::nsec3_at(NOW, Nsec3Config::default());
        sign_zone(&mut zone, &ring(NOW), &cfg, NOW).unwrap();
        assert!(zone.get(&name("example.com"), RrType::Nsec3Param).is_some());
        let n3_count = zone.rrsets().filter(|s| s.rtype == RrType::Nsec3).count();
        assert!(n3_count >= 4);
        for set in zone.rrsets().filter(|s| s.rtype == RrType::Nsec3) {
            assert!(
                !sigs_covering(&zone, &set.name, RrType::Nsec3).is_empty(),
                "NSEC3 at {} unsigned",
                set.name
            );
        }
    }

    #[test]
    fn multi_algorithm_zone_signs_with_all() {
        let mut zone = base_zone();
        let mut r = ring(NOW);
        let mut rng = StdRng::seed_from_u64(9);
        r.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::RsaSha256,
            2048,
            KeyRole::Zsk,
            NOW,
        ));
        r.add(KeyPair::generate(
            &mut rng,
            name("example.com"),
            Algorithm::RsaSha256,
            2048,
            KeyRole::Ksk,
            NOW,
        ));
        sign_zone(&mut zone, &r, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let soa_sigs = sigs_covering(&zone, &name("example.com"), RrType::Soa);
        let mut algs: Vec<u8> = soa_sigs.iter().map(|s| s.algorithm).collect();
        algs.sort_unstable();
        assert_eq!(algs, vec![8, 13]);
    }

    #[test]
    fn revoked_key_self_signs_dnskey() {
        let mut zone = base_zone();
        let mut r = ring(NOW);
        let tag = r.keys()[0].key_tag();
        r.by_tag_mut(tag).unwrap().revoke();
        // Revoked KSK plus good ZSK: ZSK signs DNSKEY (fallback), revoked key
        // also self-signs.
        sign_zone(&mut zone, &r, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let dnskey_sigs = sigs_covering(&zone, &name("example.com"), RrType::Dnskey);
        assert_eq!(dnskey_sigs.len(), 2);
        let revoked_tag = r.keys()[0].key_tag();
        assert!(dnskey_sigs.iter().any(|s| s.key_tag == revoked_tag));
    }

    #[test]
    fn empty_ring_fails() {
        let mut zone = base_zone();
        let ring = KeyRing::new();
        assert_eq!(
            sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW),
            Err(SignError::NoPublishableKeys)
        );
    }

    #[test]
    fn resign_rrset_replaces_sigs() {
        let mut zone = base_zone();
        let r = ring(NOW);
        sign_zone(&mut zone, &r, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let zsk_keys = r.active(KeyRole::Zsk, NOW);
        let expired = SignOptions {
            inception: 0,
            expiration: NOW - 1,
        };
        resign_rrset(
            &mut zone,
            &name("www.example.com"),
            RrType::A,
            zsk_keys[0],
            expired,
        );
        let sigs = sigs_covering(&zone, &name("www.example.com"), RrType::A);
        assert_eq!(sigs.len(), 1);
        assert!(!sigs[0].is_current(NOW));
        // Cryptographically still valid at a time inside the window.
        let set = zone.get(&name("www.example.com"), RrType::A).unwrap();
        verify_rrset(
            set,
            &sigs[0],
            &zsk_keys[0].dnskey,
            &name("example.com"),
            NOW - 10,
        )
        .unwrap();
    }

    #[test]
    fn cached_zone_signing_matches_uncached() {
        let r = ring(NOW);
        let cfg = SignerConfig::nsec_at(NOW);
        let mut cold = base_zone();
        sign_zone(&mut cold, &r, &cfg, NOW).unwrap();

        let mut cache = SigCache::new();
        let mut warm1 = base_zone();
        sign_zone_cached(&mut warm1, &r, &cfg, NOW, &mut cache).unwrap();
        assert_eq!(cold, warm1, "cold cache pass must match uncached signing");

        let mut warm2 = base_zone();
        sign_zone_cached(&mut warm2, &r, &cfg, NOW, &mut cache).unwrap();
        assert_eq!(cold, warm2, "warm cache pass must match uncached signing");
        assert!(cache.stats().hits > 0, "second pass should hit the cache");
    }

    #[test]
    fn resigning_is_idempotent_on_count() {
        let mut zone = base_zone();
        let r = ring(NOW);
        sign_zone(&mut zone, &r, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let count1 = zone.rrsets().filter(|s| s.rtype == RrType::Rrsig).count();
        sign_zone(&mut zone, &r, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let count2 = zone.rrsets().filter(|s| s.rtype == RrType::Rrsig).count();
        assert_eq!(count1, count2);
    }
}
