//! Authenticated denial of existence: building NSEC (RFC 4034 §4) and NSEC3
//! (RFC 5155) chains over a zone, and verifying NXDOMAIN/NODATA proofs the
//! way a validator (or DNSViz) does.

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use ddx_dns::{
    Name, Nsec, Nsec3, Nsec3Param, RData, Record, RrType, TypeBitmap, Zone, NSEC3_FLAG_OPT_OUT,
};

use crate::nsec3::{hash_covered, nsec3_hash, Nsec3Config};

/// Which denial mechanism a zone uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenialMode {
    Nsec,
    Nsec3(Nsec3Config),
}

/// What kind of negative answer a proof must establish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DenialKind {
    /// The name does not exist at all.
    NxDomain,
    /// The name exists but has no records of the queried type.
    NoData,
}

/// Why a denial proof failed to verify. Variants map onto the paper's
/// NSEC(3) error subcategories.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DenialFailure {
    /// No NSEC/NSEC3 records relevant to the query at all
    /// ("Missing Non-existence Proof").
    MissingProof,
    /// Records were present but none covers/matches the name
    /// ("Bad Non-existence Proof" / "No NSEC3 RR matches the SNAME").
    BadCoverage,
    /// NODATA proof whose bitmap still asserts the queried type
    /// ("Incorrect Type Bitmap").
    BitmapAssertsType(RrType),
    /// NSEC3 NXDOMAIN proof lacking a closest-encloser match
    /// ("Incorrect Closest Encloser Proof").
    MissingClosestEncloser,
    /// No proof that the source-of-synthesis wildcard does not exist.
    MissingWildcardProof,
    /// An NSEC3 record's own owner-name label is not a valid hash label
    /// ("Invalid NSEC3 Owner Name").
    InvalidOwnerName(Name),
    /// An NSEC3 record's next-hash field has the wrong length
    /// ("Invalid NSEC3 Hash").
    InvalidHashLength(usize),
    /// NSEC3 uses a hash algorithm the validator does not support
    /// ("Unsupported NSEC3 Algorithm").
    UnsupportedAlgorithm(u8),
}

// ------------------------------------------------------------ chain build

/// Computes the set of empty non-terminals: names that exist only because a
/// descendant does (RFC 5155 §7.1 requires NSEC3 records for them).
pub fn empty_non_terminals(zone: &Zone) -> Vec<Name> {
    let mut ents = BTreeSet::new();
    let have: BTreeSet<Name> = zone.names().cloned().collect();
    for name in zone.authoritative_names() {
        let mut cur = name.parent();
        while let Some(p) = cur {
            if !p.is_strict_subdomain_of(zone.apex()) && &p != zone.apex() {
                break;
            }
            if !have.contains(&p) {
                ents.insert(p.clone());
            }
            cur = p.parent();
        }
    }
    ents.into_iter().collect()
}

/// The NSEC/NSEC3 type bitmap for an authoritative name: the types present
/// there plus RRSIG (all signed zones) — and NSEC itself for NSEC chains.
fn bitmap_for(zone: &Zone, name: &Name, include_nsec: bool) -> TypeBitmap {
    let mut types: Vec<RrType> = zone
        .types_at(name)
        .into_iter()
        .filter(|t| !matches!(t, RrType::Rrsig | RrType::Nsec | RrType::Nsec3))
        .collect();
    // At a delegation point only NS, DS (if present) and the chain types are
    // asserted; anything else at the cut is occluded.
    if name != zone.apex() && types.contains(&RrType::Ns) {
        types.retain(|t| matches!(t, RrType::Ns | RrType::Ds));
    }
    let mut bm = TypeBitmap::from_types(types);
    bm.insert(RrType::Rrsig);
    if include_nsec {
        bm.insert(RrType::Nsec);
    }
    bm
}

/// Adds a complete NSEC chain to the zone (TTL = SOA minimum, per RFC 4034
/// §4: "the NSEC RR SHOULD have the same TTL value as the SOA minimum").
pub fn build_nsec_chain(zone: &mut Zone) {
    let ttl = zone.soa().map(|s| s.minimum).unwrap_or(300);
    let names = zone.authoritative_names();
    if names.is_empty() {
        return;
    }
    for (i, name) in names.iter().enumerate() {
        let next = names[(i + 1) % names.len()].clone();
        let bitmap = bitmap_for(zone, name, true);
        zone.add(Record::new(
            name.clone(),
            ttl,
            RData::Nsec(Nsec {
                next_name: next,
                type_bitmap: bitmap,
            }),
        ));
    }
}

/// Adds a complete NSEC3 chain plus NSEC3PARAM to the zone.
pub fn build_nsec3_chain(zone: &mut Zone, cfg: &Nsec3Config) {
    let ttl = zone.soa().map(|s| s.minimum).unwrap_or(300);
    let apex = zone.apex().clone();
    zone.add(Record::new(
        apex.clone(),
        0,
        RData::Nsec3Param(Nsec3Param {
            hash_algorithm: cfg.hash_algorithm,
            flags: 0,
            iterations: cfg.iterations,
            salt: cfg.salt.clone(),
        }),
    ));

    // Names that need NSEC3 records: authoritative names + ENTs; insecure
    // delegations are skipped when opt-out is set (RFC 5155 §7.1).
    let mut names = zone.authoritative_names();
    names.extend(empty_non_terminals(zone));
    if cfg.opt_out {
        names.retain(|n| {
            let is_insecure_delegation = n != &apex
                && zone.get(n, RrType::Ns).is_some()
                && zone.get(n, RrType::Ds).is_none();
            !is_insecure_delegation
        });
    }

    // Hash everything, sort by hash to form the ring.
    let mut hashed: Vec<(Vec<u8>, Name)> = names
        .into_iter()
        .map(|n| (nsec3_hash(&n, &cfg.salt, cfg.iterations), n))
        .collect();
    hashed.sort();
    hashed.dedup_by(|a, b| a.0 == b.0);
    let flags = if cfg.opt_out { NSEC3_FLAG_OPT_OUT } else { 0 };
    let count = hashed.len();
    for i in 0..count {
        let (ref hash, ref name) = hashed[i];
        let next_hash = hashed[(i + 1) % count].0.clone();
        let bitmap = if zone.has_name(name) {
            bitmap_for(zone, name, false)
        } else {
            TypeBitmap::new() // empty non-terminal
        };
        // Derive the owner from the hash already computed for the ring
        // instead of rehashing the name.
        let owner = apex
            .child(&ddx_dns::base32::encode(hash))
            .expect("nsec3 label fits");
        zone.add(Record::new(
            owner,
            ttl,
            RData::Nsec3(Nsec3 {
                hash_algorithm: cfg.hash_algorithm,
                flags,
                iterations: cfg.iterations,
                salt: cfg.salt.clone(),
                next_hashed_owner: next_hash,
                type_bitmap: bitmap,
            }),
        ));
    }
}

// ----------------------------------------------------------- verification

/// An NSEC record with its owner, as extracted from a response.
pub type NsecView<'a> = (&'a Name, &'a Nsec);
/// An NSEC3 record with its owner, as extracted from a response.
pub type Nsec3View<'a> = (&'a Name, &'a Nsec3);

/// Canonical "covers" predicate for NSEC: owner < name < next, with the last
/// record (next = apex) covering everything after the owner.
pub fn nsec_covers(owner: &Name, next: &Name, name: &Name, apex: &Name) -> bool {
    use std::cmp::Ordering::*;
    match owner.canonical_cmp(next) {
        Less => owner.canonical_cmp(name) == Less && name.canonical_cmp(next) == Less,
        Greater | Equal => {
            // Wrap-around record (next should be the apex).
            let _ = apex;
            owner.canonical_cmp(name) == Less || name.canonical_cmp(next) == Less
        }
    }
}

/// Verifies an NSEC-based denial for `qname`/`qtype`.
pub fn verify_nsec_denial(
    qname: &Name,
    qtype: RrType,
    kind: DenialKind,
    records: &[NsecView<'_>],
    apex: &Name,
) -> Result<(), DenialFailure> {
    if records.is_empty() {
        return Err(DenialFailure::MissingProof);
    }
    match kind {
        DenialKind::NoData => {
            let Some((_, nsec)) = records.iter().find(|(o, _)| *o == qname) else {
                // An ENT NODATA may instead be proven by an NSEC whose next
                // name is a descendant of qname (RFC 4035 §3.1.3.2 practice).
                if records.iter().any(|(o, n)| {
                    nsec_covers(o, &n.next_name, qname, apex)
                        && n.next_name.is_strict_subdomain_of(qname)
                }) {
                    return Ok(());
                }
                return Err(DenialFailure::BadCoverage);
            };
            if nsec.type_bitmap.contains(qtype) {
                return Err(DenialFailure::BitmapAssertsType(qtype));
            }
            if nsec.type_bitmap.contains(RrType::Cname) {
                return Err(DenialFailure::BitmapAssertsType(RrType::Cname));
            }
            Ok(())
        }
        DenialKind::NxDomain => {
            let covering = records
                .iter()
                .find(|(o, n)| nsec_covers(o, &n.next_name, qname, apex));
            let Some((ce_owner, _)) = covering else {
                return Err(DenialFailure::BadCoverage);
            };
            // Closest encloser: longest common ancestor of qname and the
            // covering NSEC's owner; the wildcard child must also be denied.
            let ce = closest_common_ancestor(qname, ce_owner, apex);
            let wildcard = ce.child("*").expect("wildcard label fits");
            let wildcard_denied = records
                .iter()
                .any(|(o, n)| nsec_covers(o, &n.next_name, &wildcard, apex) || *o == &wildcard);
            if !wildcard_denied && &wildcard != qname {
                return Err(DenialFailure::MissingWildcardProof);
            }
            Ok(())
        }
    }
}

fn closest_common_ancestor(a: &Name, b: &Name, apex: &Name) -> Name {
    let mut candidate = a.clone();
    loop {
        if b.is_subdomain_of(&candidate) || candidate == *apex {
            return candidate;
        }
        match candidate.parent() {
            Some(p) => candidate = p,
            None => return Name::root(),
        }
    }
}

/// Structural sanity checks on a single NSEC3 record (owner label decodes to
/// a hash of the right length, hash field length, supported algorithm).
pub fn check_nsec3_structure(
    owner: &Name,
    nsec3: &Nsec3,
    apex: &Name,
) -> Result<(), DenialFailure> {
    if nsec3.hash_algorithm != crate::nsec3::NSEC3_HASH_SHA1 {
        return Err(DenialFailure::UnsupportedAlgorithm(nsec3.hash_algorithm));
    }
    if nsec3.next_hashed_owner.len() != 20 {
        return Err(DenialFailure::InvalidHashLength(
            nsec3.next_hashed_owner.len(),
        ));
    }
    let Some(label) = owner.labels().first() else {
        return Err(DenialFailure::InvalidOwnerName(owner.clone()));
    };
    let Ok(label_str) = std::str::from_utf8(label.as_bytes()) else {
        return Err(DenialFailure::InvalidOwnerName(owner.clone()));
    };
    match ddx_dns::base32::decode(label_str) {
        Some(h) if h.len() == 20 && owner.is_strict_subdomain_of(apex) => Ok(()),
        _ => Err(DenialFailure::InvalidOwnerName(owner.clone())),
    }
}

/// Extracts the owner-label hash of an NSEC3 record.
fn owner_hash(owner: &Name) -> Option<Vec<u8>> {
    let label = owner.labels().first()?;
    ddx_dns::base32::decode(std::str::from_utf8(label.as_bytes()).ok()?)
}

/// Verifies an NSEC3-based denial (RFC 5155 §8.4–8.7).
pub fn verify_nsec3_denial(
    qname: &Name,
    qtype: RrType,
    kind: DenialKind,
    records: &[Nsec3View<'_>],
    apex: &Name,
) -> Result<(), DenialFailure> {
    if records.is_empty() {
        return Err(DenialFailure::MissingProof);
    }
    for (owner, n3) in records {
        check_nsec3_structure(owner, n3, apex)?;
    }
    let (salt, iterations) = {
        let (_, n3) = records[0];
        (n3.salt.clone(), n3.iterations)
    };
    let hash_of = |n: &Name| nsec3_hash(n, &salt, iterations);
    let matches = |target: &Name| -> Option<&Nsec3View<'_>> {
        let th = hash_of(target);
        records
            .iter()
            .find(|(o, _)| owner_hash(o).as_deref() == Some(&th[..]))
    };
    let covers = |target: &Name| -> bool {
        let th = hash_of(target);
        records.iter().any(|(o, n3)| {
            owner_hash(o)
                .map(|oh| hash_covered(&oh, &n3.next_hashed_owner, &th))
                .unwrap_or(false)
        })
    };

    match kind {
        DenialKind::NoData => {
            let Some((_, n3)) = matches(qname) else {
                return Err(DenialFailure::BadCoverage);
            };
            if n3.type_bitmap.contains(qtype) {
                return Err(DenialFailure::BitmapAssertsType(qtype));
            }
            if n3.type_bitmap.contains(RrType::Cname) {
                return Err(DenialFailure::BitmapAssertsType(RrType::Cname));
            }
            Ok(())
        }
        DenialKind::NxDomain => {
            // Find the closest encloser: deepest ancestor of qname with a
            // matching NSEC3 record.
            let mut ce: Option<Name> = None;
            let mut candidate = qname.parent();
            while let Some(c) = candidate {
                if !c.is_subdomain_of(apex) {
                    break;
                }
                if matches(&c).is_some() {
                    ce = Some(c);
                    break;
                }
                candidate = c.parent();
            }
            let Some(ce) = ce else {
                return Err(DenialFailure::MissingClosestEncloser);
            };
            // Next-closer name must be covered (or opted out).
            let depth = ce.label_count() + 1;
            let labels = qname.labels();
            let next_closer = Name::from_labels(labels[labels.len() - depth..].to_vec())
                .expect("next closer fits");
            let next_closer_ok = covers(&next_closer)
                || records.iter().any(|(o, n3)| {
                    n3.opt_out()
                        && owner_hash(o)
                            .map(|oh| {
                                hash_covered(&oh, &n3.next_hashed_owner, &hash_of(&next_closer))
                            })
                            .unwrap_or(false)
                });
            if !next_closer_ok {
                return Err(DenialFailure::BadCoverage);
            }
            // Wildcard at the closest encloser must be denied.
            let wildcard = ce.child("*").expect("wildcard fits");
            if !covers(&wildcard) && matches(&wildcard).is_none() {
                return Err(DenialFailure::MissingWildcardProof);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsec3::nsec3_owner;
    use ddx_dns::{name, Soa};
    use std::net::Ipv4Addr;

    fn test_zone() -> Zone {
        let mut z = Zone::new(name("example.com"));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Soa(Soa {
                mname: name("ns1.example.com"),
                rname: name("hostmaster.example.com"),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1209600,
                minimum: 300,
            }),
        ));
        z.add(Record::new(
            name("example.com"),
            3600,
            RData::Ns(name("ns1.example.com")),
        ));
        z.add(Record::new(
            name("ns1.example.com"),
            3600,
            RData::A(Ipv4Addr::new(192, 0, 2, 1)),
        ));
        z.add(Record::new(
            name("www.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
        z.add(Record::new(
            name("a.deep.example.com"),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 81)),
        ));
        z
    }

    fn nsec_views(zone: &Zone) -> Vec<(Name, Nsec)> {
        zone.rrsets()
            .filter(|s| s.rtype == RrType::Nsec)
            .flat_map(|s| {
                s.rdatas.iter().filter_map(move |rd| match rd {
                    RData::Nsec(n) => Some((s.name.clone(), n.clone())),
                    _ => None,
                })
            })
            .collect()
    }

    fn nsec3_views(zone: &Zone) -> Vec<(Name, Nsec3)> {
        zone.rrsets()
            .filter(|s| s.rtype == RrType::Nsec3)
            .flat_map(|s| {
                s.rdatas.iter().filter_map(move |rd| match rd {
                    RData::Nsec3(n) => Some((s.name.clone(), n.clone())),
                    _ => None,
                })
            })
            .collect()
    }

    #[test]
    fn empty_non_terminals_found() {
        let zone = test_zone();
        assert_eq!(empty_non_terminals(&zone), vec![name("deep.example.com")]);
    }

    #[test]
    fn nsec_chain_wraps_to_apex() {
        let mut zone = test_zone();
        build_nsec_chain(&mut zone);
        let views = nsec_views(&zone);
        assert_eq!(views.len(), 4); // apex, a.deep, ns1, www
                                    // The record at the canonically-last name wraps to the apex.
        let last = views
            .iter()
            .find(|(_, n)| n.next_name == name("example.com"))
            .expect("wrap record");
        assert_eq!(last.0, name("www.example.com"));
    }

    #[test]
    fn nsec_nxdomain_proof_verifies() {
        let mut zone = test_zone();
        build_nsec_chain(&mut zone);
        let views = nsec_views(&zone);
        let refs: Vec<NsecView> = views.iter().map(|(o, n)| (o, n)).collect();
        verify_nsec_denial(
            &name("nope.example.com"),
            RrType::A,
            DenialKind::NxDomain,
            &refs,
            &name("example.com"),
        )
        .unwrap();
    }

    #[test]
    fn nsec_nodata_proof_verifies() {
        let mut zone = test_zone();
        build_nsec_chain(&mut zone);
        let views = nsec_views(&zone);
        let refs: Vec<NsecView> = views.iter().map(|(o, n)| (o, n)).collect();
        verify_nsec_denial(
            &name("www.example.com"),
            RrType::Aaaa,
            DenialKind::NoData,
            &refs,
            &name("example.com"),
        )
        .unwrap();
        // But a NODATA claim for a type that exists is caught.
        assert_eq!(
            verify_nsec_denial(
                &name("www.example.com"),
                RrType::A,
                DenialKind::NoData,
                &refs,
                &name("example.com"),
            ),
            Err(DenialFailure::BitmapAssertsType(RrType::A))
        );
    }

    #[test]
    fn nsec_missing_proof() {
        assert_eq!(
            verify_nsec_denial(
                &name("x.example.com"),
                RrType::A,
                DenialKind::NxDomain,
                &[],
                &name("example.com"),
            ),
            Err(DenialFailure::MissingProof)
        );
    }

    #[test]
    fn nsec_bad_coverage() {
        let mut zone = test_zone();
        build_nsec_chain(&mut zone);
        let views = nsec_views(&zone);
        // Keep only the apex NSEC; it cannot cover names past ns1.
        let refs: Vec<NsecView> = views
            .iter()
            .filter(|(o, _)| o == &name("example.com"))
            .map(|(o, n)| (o, n))
            .collect();
        assert_eq!(
            verify_nsec_denial(
                &name("zzz.example.com"),
                RrType::A,
                DenialKind::NxDomain,
                &refs,
                &name("example.com"),
            ),
            Err(DenialFailure::BadCoverage)
        );
    }

    #[test]
    fn nsec3_chain_and_nxdomain() {
        let mut zone = test_zone();
        let cfg = Nsec3Config::default();
        build_nsec3_chain(&mut zone, &cfg);
        let views = nsec3_views(&zone);
        // apex, ns1, www, deep (ENT), a.deep — 5 records.
        assert_eq!(views.len(), 5);
        let refs: Vec<Nsec3View> = views.iter().map(|(o, n)| (o, n)).collect();
        verify_nsec3_denial(
            &name("nope.example.com"),
            RrType::A,
            DenialKind::NxDomain,
            &refs,
            &name("example.com"),
        )
        .unwrap();
    }

    #[test]
    fn nsec3_nodata() {
        let mut zone = test_zone();
        build_nsec3_chain(&mut zone, &Nsec3Config::default());
        let views = nsec3_views(&zone);
        let refs: Vec<Nsec3View> = views.iter().map(|(o, n)| (o, n)).collect();
        verify_nsec3_denial(
            &name("www.example.com"),
            RrType::Txt,
            DenialKind::NoData,
            &refs,
            &name("example.com"),
        )
        .unwrap();
        assert_eq!(
            verify_nsec3_denial(
                &name("www.example.com"),
                RrType::A,
                DenialKind::NoData,
                &refs,
                &name("example.com"),
            ),
            Err(DenialFailure::BitmapAssertsType(RrType::A))
        );
    }

    #[test]
    fn nsec3_ent_has_empty_bitmap() {
        let mut zone = test_zone();
        build_nsec3_chain(&mut zone, &Nsec3Config::default());
        let ent_owner = nsec3_owner(&name("deep.example.com"), &name("example.com"), &[], 0);
        let set = zone.get(&ent_owner, RrType::Nsec3).expect("ENT NSEC3");
        match &set.rdatas[0] {
            RData::Nsec3(n3) => assert!(n3.type_bitmap.is_empty()),
            _ => panic!(),
        }
    }

    #[test]
    fn nsec3_structure_checks() {
        let apex = name("example.com");
        let good_owner = nsec3_owner(&name("x.example.com"), &apex, &[], 0);
        let mut n3 = Nsec3 {
            hash_algorithm: 1,
            flags: 0,
            iterations: 0,
            salt: vec![],
            next_hashed_owner: vec![0; 20],
            type_bitmap: TypeBitmap::new(),
        };
        check_nsec3_structure(&good_owner, &n3, &apex).unwrap();
        // Unsupported algorithm.
        n3.hash_algorithm = 6;
        assert_eq!(
            check_nsec3_structure(&good_owner, &n3, &apex),
            Err(DenialFailure::UnsupportedAlgorithm(6))
        );
        n3.hash_algorithm = 1;
        // Wrong hash length.
        n3.next_hashed_owner = vec![0; 10];
        assert_eq!(
            check_nsec3_structure(&good_owner, &n3, &apex),
            Err(DenialFailure::InvalidHashLength(10))
        );
        n3.next_hashed_owner = vec![0; 20];
        // Bad owner label.
        let bad_owner = name("not-base32!!.example.com");
        assert!(matches!(
            check_nsec3_structure(&bad_owner, &n3, &apex),
            Err(DenialFailure::InvalidOwnerName(_))
        ));
    }

    #[test]
    fn nsec3_optout_skips_insecure_delegation() {
        let mut zone = test_zone();
        zone.add(Record::new(
            name("child.example.com"),
            3600,
            RData::Ns(name("ns.child.example.com")),
        ));
        let cfg = Nsec3Config {
            opt_out: true,
            ..Default::default()
        };
        build_nsec3_chain(&mut zone, &cfg);
        let owner = nsec3_owner(&name("child.example.com"), &name("example.com"), &[], 0);
        assert!(
            zone.get(&owner, RrType::Nsec3).is_none(),
            "insecure delegation must be omitted under opt-out"
        );
        // And the NXDOMAIN-style coverage for it still verifies via opt-out.
        let views = nsec3_views(&zone);
        let refs: Vec<Nsec3View> = views.iter().map(|(o, n)| (o, n)).collect();
        verify_nsec3_denial(
            &name("x.child2.example.com"),
            RrType::A,
            DenialKind::NxDomain,
            &refs,
            &name("example.com"),
        )
        .unwrap();
    }
}
