//! NSEC3 hashing (RFC 5155 §5) and parameter handling, including the
//! RFC 9276 guidance that iteration count SHOULD be 0 and salt empty —
//! the single most violated rule in the paper's dataset ("Nonzero
//! Iteration Count", 28.8% of snapshots).

use std::cell::RefCell;
use std::collections::HashMap;

use serde::{Deserialize, Serialize};
use sha1::{Digest, Sha1};

use ddx_dns::{base32, Name};

/// The only NSEC3 hash algorithm defined (RFC 5155 §11): SHA-1.
pub const NSEC3_HASH_SHA1: u8 = 1;

/// NSEC3 chain parameters, mirroring the NSEC3PARAM RDATA.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec3Config {
    pub hash_algorithm: u8,
    pub iterations: u16,
    pub salt: Vec<u8>,
    /// Set the Opt-Out flag on generated NSEC3 records.
    pub opt_out: bool,
}

impl Default for Nsec3Config {
    /// RFC 9276-compliant defaults: zero iterations, empty salt, no opt-out.
    fn default() -> Self {
        Nsec3Config {
            hash_algorithm: NSEC3_HASH_SHA1,
            iterations: 0,
            salt: Vec::new(),
            opt_out: false,
        }
    }
}

impl Nsec3Config {
    /// True if the parameters satisfy RFC 9276 §3.1 (iterations 0, salt
    /// empty). Violations are the paper's NZIC / salt warnings.
    pub fn rfc9276_compliant(&self) -> bool {
        self.iterations == 0 && self.salt.is_empty()
    }
}

/// Memo table entry cap before the table resets. High-iteration snapshots
/// (the paper's NZIC class) hash the same names over and over across chain
/// building, proof checking, and grok; 64Ki entries covers the largest
/// sandbox zones many times over while bounding long-lived processes.
const MEMO_MAX_ENTRIES: usize = 1 << 16;

/// Per-thread memo state. The map and the legacy (hits, misses) tallies are
/// thread-local — [`nsec3_memo_stats`] reports only the calling thread —
/// but every hit/miss *also* bumps the process-wide
/// `dnssec.nsec3_memo.{hits,misses}` counters through the cached global
/// handles, live at the moment it happens. That is what makes parallel
/// `evaluate_corpus` totals accurate: worker-thread traffic aggregates into
/// the global registry as it occurs instead of dying with the worker's
/// thread-locals (historically the stats were thread-local only, so
/// parallel runs underreported every hit taken off the main thread).
struct Nsec3Memo {
    map: HashMap<(Vec<u8>, Vec<u8>, u16), Vec<u8>>,
    hits: u64,
    misses: u64,
    obs_hits: ddx_obs::Counter,
    obs_misses: ddx_obs::Counter,
}

impl Nsec3Memo {
    fn new() -> Self {
        Nsec3Memo {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            obs_hits: ddx_obs::counter("dnssec.nsec3_memo.hits", &[]),
            obs_misses: ddx_obs::counter("dnssec.nsec3_memo.misses", &[]),
        }
    }
}

thread_local! {
    /// (canonical name wire, salt, iterations) → hash, plus tallies.
    static NSEC3_MEMO: RefCell<Nsec3Memo> = RefCell::new(Nsec3Memo::new());
}

/// Computes the NSEC3 hash of `name` (RFC 5155 §5):
/// `IH(salt, x, 0) = H(x ‖ salt)`, `IH(salt, x, k) = H(IH(salt, x, k-1) ‖ salt)`,
/// over the canonical (lowercased) wire form of the name.
///
/// Hashes with a nonzero iteration count are memoized per thread: the extra
/// rounds dominate chain-build and proof-check cost, and the same names
/// recur across every signing pass and grok of a sandbox. Zero-iteration
/// hashes (the RFC 9276 default) are a single SHA-1 round — cheaper than
/// the memo lookup — and bypass the table.
pub fn nsec3_hash(name: &Name, salt: &[u8], iterations: u16) -> Vec<u8> {
    // Logical-work ledger: `1 + iterations` SHA-1 rounds per hash request,
    // recorded before the memo lookup so cache temperature never shows.
    crate::workload::record_nsec3_rounds(1 + iterations as u64);
    if iterations == 0 {
        return nsec3_hash_uncached(name, salt, iterations);
    }
    NSEC3_MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        let key = (name.canonical_wire(), salt.to_vec(), iterations);
        if let Some(hash) = memo.map.get(&key) {
            memo.hits += 1;
            memo.obs_hits.inc();
            return hash.clone();
        }
        memo.misses += 1;
        memo.obs_misses.inc();
        let hash = nsec3_hash_uncached(name, salt, iterations);
        if memo.map.len() >= MEMO_MAX_ENTRIES {
            memo.map.clear();
        }
        memo.map.insert(key, hash.clone());
        hash
    })
}

/// The raw RFC 5155 §5 computation, always performed, never memoized.
pub fn nsec3_hash_uncached(name: &Name, salt: &[u8], iterations: u16) -> Vec<u8> {
    let mut h = Sha1::new();
    h.update(name.canonical_wire());
    h.update(salt);
    let mut digest = h.finalize_reset().to_vec();
    for _ in 0..iterations {
        h.update(&digest);
        h.update(salt);
        digest = h.finalize_reset().to_vec();
    }
    digest
}

/// This thread's NSEC3 memo (hits, misses) counters.
///
/// Scope caveat: these tallies are **per thread**. A parallel
/// `evaluate_corpus` does almost all of its hashing on worker threads, so
/// reading this from the coordinating thread sees (close to) zero. For
/// process-wide totals aggregated across every thread, read the
/// `dnssec.nsec3_memo.{hits,misses}` counters from a [`ddx_obs`] snapshot —
/// they are bumped live on each hit/miss, so no flush step is needed and
/// nothing is lost when a worker exits.
pub fn nsec3_memo_stats() -> (u64, u64) {
    NSEC3_MEMO.with(|memo| {
        let memo = &*memo.borrow();
        (memo.hits, memo.misses)
    })
}

/// Empties this thread's NSEC3 memo table and resets its per-thread
/// counters. The global `dnssec.nsec3_memo.*` metrics are monotonic and
/// unaffected.
pub fn nsec3_memo_clear() {
    NSEC3_MEMO.with(|memo| {
        let memo = &mut *memo.borrow_mut();
        memo.map.clear();
        memo.hits = 0;
        memo.misses = 0;
    })
}

#[cfg(test)]
mod memo_metrics_tests {
    use super::*;
    use ddx_dns::name;

    #[test]
    fn worker_thread_memo_traffic_reaches_global_registry() {
        let hits = ddx_obs::counter("dnssec.nsec3_memo.hits", &[]);
        let misses = ddx_obs::counter("dnssec.nsec3_memo.misses", &[]);
        let (h0, m0) = (hits.get(), misses.get());
        std::thread::spawn(|| {
            let n = name("metrics-probe.example.com");
            let first = nsec3_hash(&n, b"ab", 5);
            let second = nsec3_hash(&n, b"ab", 5);
            assert_eq!(first, second);
            // The legacy accessor sees this worker thread's traffic...
            let (h, m) = nsec3_memo_stats();
            assert!(h >= 1 && m >= 1);
        })
        .join()
        .unwrap();
        // ...and the global registry retains it after the worker exits,
        // which is exactly what the thread-local accessor loses.
        assert!(hits.get() - h0 >= 1);
        assert!(misses.get() - m0 >= 1);
    }
}

/// The base32hex label under which the NSEC3 record for `name` lives.
pub fn nsec3_label(name: &Name, salt: &[u8], iterations: u16) -> String {
    base32::encode(&nsec3_hash(name, salt, iterations))
}

/// The full owner name of the NSEC3 record for `name` in `zone`.
pub fn nsec3_owner(name: &Name, zone: &Name, salt: &[u8], iterations: u16) -> Name {
    zone.child(&nsec3_label(name, salt, iterations))
        .expect("nsec3 label fits")
}

/// True if `hash` falls strictly between `owner_hash` and `next_hash` on the
/// NSEC3 ring (handles wrap-around at the end of the chain).
pub fn hash_covered(owner_hash: &[u8], next_hash: &[u8], hash: &[u8]) -> bool {
    use std::cmp::Ordering::*;
    match owner_hash.cmp(next_hash) {
        Less => owner_hash < hash && hash < next_hash,
        // Last NSEC3 in the chain wraps to the first.
        Greater => hash > owner_hash || hash < next_hash,
        // Single-record chain covers everything except itself.
        Equal => hash != owner_hash,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dns::name;
    use proptest::prelude::*;

    #[test]
    fn rfc5155_appendix_a_vector() {
        // RFC 5155 Appendix A: H(example) with salt aabbccdd, 12 extra
        // iterations = 0p9mhaveqvm6t7vbl5lop2u3t2rp3tom.
        let hash = nsec3_hash(&name("example"), &[0xaa, 0xbb, 0xcc, 0xdd], 12);
        assert_eq!(
            base32::encode(&hash).to_ascii_lowercase(),
            "0p9mhaveqvm6t7vbl5lop2u3t2rp3tom"
        );
    }

    #[test]
    fn rfc5155_a_example_vector() {
        // Same appendix: H(a.example) = 35mthgpgcu1qg68fab165klnsnk3dpvl.
        let hash = nsec3_hash(&name("a.example"), &[0xaa, 0xbb, 0xcc, 0xdd], 12);
        assert_eq!(
            base32::encode(&hash).to_ascii_lowercase(),
            "35mthgpgcu1qg68fab165klnsnk3dpvl"
        );
    }

    #[test]
    fn hash_is_case_insensitive() {
        assert_eq!(
            nsec3_hash(&name("Example.COM"), b"s", 3),
            nsec3_hash(&name("example.com"), b"s", 3)
        );
    }

    #[test]
    fn iterations_change_hash() {
        let n = name("example.com");
        assert_ne!(nsec3_hash(&n, b"", 0), nsec3_hash(&n, b"", 1));
        assert_ne!(nsec3_hash(&n, b"", 0), nsec3_hash(&n, b"x", 0));
    }

    #[test]
    fn memoized_hash_matches_uncached() {
        // Each test runs on its own thread, so the thread-local memo and
        // its counters are isolated here.
        nsec3_memo_clear();
        let n = name("memo.example.com");
        let direct = nsec3_hash_uncached(&n, b"salt", 25);
        assert_eq!(nsec3_hash(&n, b"salt", 25), direct, "miss path");
        assert_eq!(nsec3_hash(&n, b"salt", 25), direct, "hit path");
        assert_eq!(nsec3_memo_stats(), (1, 1));
        // Zero-iteration hashes bypass the memo entirely.
        nsec3_hash(&n, b"salt", 0);
        assert_eq!(nsec3_memo_stats(), (1, 1));
    }

    #[test]
    fn owner_name_format() {
        let owner = nsec3_owner(&name("www.example.com"), &name("example.com"), &[], 0);
        assert_eq!(owner.label_count(), 3);
        assert!(owner.is_subdomain_of(&name("example.com")));
        // base32hex of SHA-1: 32 chars.
        assert_eq!(owner.labels()[0].len(), 32);
    }

    #[test]
    fn coverage_logic() {
        let a = [10u8; 20];
        let b = [20u8; 20];
        let mid = [15u8; 20];
        let out = [25u8; 20];
        assert!(hash_covered(&a, &b, &mid));
        assert!(!hash_covered(&a, &b, &out));
        assert!(!hash_covered(&a, &b, &a));
        assert!(!hash_covered(&a, &b, &b));
        // Wrap-around: last record covering the gap past the end.
        assert!(hash_covered(&b, &a, &out));
        assert!(hash_covered(&b, &a, &[5u8; 20]));
        assert!(!hash_covered(&b, &a, &mid));
        // Degenerate single-record chain.
        assert!(hash_covered(&a, &a, &mid));
        assert!(!hash_covered(&a, &a, &a));
    }

    #[test]
    fn rfc9276_compliance() {
        assert!(Nsec3Config::default().rfc9276_compliant());
        let bad = Nsec3Config {
            iterations: 10,
            ..Default::default()
        };
        assert!(!bad.rfc9276_compliant());
        let salty = Nsec3Config {
            salt: vec![1, 2],
            ..Default::default()
        };
        assert!(!salty.rfc9276_compliant());
    }

    proptest! {
        #[test]
        fn hash_deterministic(label in "[a-z]{1,10}", iters in 0u16..50) {
            let n = name(&format!("{label}.example.com"));
            prop_assert_eq!(nsec3_hash(&n, b"salt", iters), nsec3_hash(&n, b"salt", iters));
        }

        #[test]
        fn coverage_excludes_endpoints(h1 in any::<[u8; 20]>(), h2 in any::<[u8; 20]>()) {
            prop_assert!(!hash_covered(&h1, &h2, &h1));
            prop_assert!(!hash_covered(&h1, &h2, &h2) || h1 == h2);
        }
    }
}
