//! Thread-local ledger of *logical* DNSSEC validation work: one unit per
//! attempted signature verification, `1 + iterations` SHA-1 rounds per
//! NSEC3 hash computation.
//!
//! "Logical" is the load-bearing word: work is recorded at function entry,
//! before any memo lookup, so the ledger is a pure function of the calls
//! made — not of cache temperature. That is what lets grok charge
//! validation budgets from ledger deltas without breaking the
//! incremental==scratch byte-parity pin (a memo hit and a memo miss cost
//! the same logical work), and what the KeyTrap-style adversarial tests
//! cross-check their complexity bounds against.

use std::cell::Cell;

/// Cumulative logical work recorded on the calling thread.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkSnapshot {
    /// Attempted RRSIG verifications (`verify_rrset` entries, counted
    /// before any metadata check can short-circuit).
    pub sig_verifications: u64,
    /// NSEC3 hash rounds: each `nsec3_hash(name, salt, iterations)` call
    /// records `1 + iterations` rounds, memoized or not.
    pub nsec3_hash_rounds: u64,
}

impl WorkSnapshot {
    /// Work recorded since `earlier` (snapshots from the same thread).
    pub fn since(&self, earlier: &WorkSnapshot) -> WorkSnapshot {
        WorkSnapshot {
            sig_verifications: self
                .sig_verifications
                .saturating_sub(earlier.sig_verifications),
            nsec3_hash_rounds: self
                .nsec3_hash_rounds
                .saturating_sub(earlier.nsec3_hash_rounds),
        }
    }
}

thread_local! {
    static LEDGER: Cell<WorkSnapshot> = Cell::new(WorkSnapshot {
        sig_verifications: 0,
        nsec3_hash_rounds: 0,
    });
}

/// This thread's cumulative work ledger. Monotone within a thread; meter a
/// region with [`WorkSnapshot::since`] around it.
pub fn work_snapshot() -> WorkSnapshot {
    LEDGER.with(|c| c.get())
}

pub(crate) fn record_sig_verification() {
    LEDGER.with(|c| {
        let mut s = c.get();
        s.sig_verifications += 1;
        c.set(s);
    });
}

pub(crate) fn record_nsec3_rounds(rounds: u64) {
    LEDGER.with(|c| {
        let mut s = c.get();
        s.nsec3_hash_rounds = s.nsec3_hash_rounds.saturating_add(rounds);
        c.set(s);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nsec3::nsec3_hash;
    use ddx_dns::name;

    #[test]
    fn nsec3_rounds_are_memo_independent() {
        let n = name("ledger.example.com");
        let before = work_snapshot();
        nsec3_hash(&n, b"salt", 9); // cold: miss
        let cold = work_snapshot().since(&before);
        assert_eq!(cold.nsec3_hash_rounds, 10, "1 + iterations rounds");
        let mid = work_snapshot();
        nsec3_hash(&n, b"salt", 9); // warm: memo hit, same logical work
        let warm = work_snapshot().since(&mid);
        assert_eq!(warm, cold, "ledger must not see cache temperature");
    }

    #[test]
    fn zero_iteration_hash_records_one_round() {
        let before = work_snapshot();
        nsec3_hash(&name("flat.example.com"), b"", 0);
        assert_eq!(work_snapshot().since(&before).nsec3_hash_rounds, 1);
    }
}
