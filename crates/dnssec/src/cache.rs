//! RRSIG memo cache for the sign-once signing pipeline.
//!
//! Signatures in this workspace are deterministic functions of the DNSKEY
//! RDATA and the signing payload (see DESIGN.md §4), so a signature computed
//! once can be replayed for any later request over the same inputs. The
//! cache key is a SHA-256 digest over both, plus the algorithm's signature
//! length. Because the signing payload embeds the full RRSIG prefix —
//! type covered, algorithm, labels, original TTL, the inception/expiration
//! window, key tag, and signer name — as well as the canonical RRset bytes,
//! every component the ISSUE names (canonical RRset digest, key tag,
//! algorithm, validity window) is subsumed: two requests collide only if
//! they would produce byte-identical signatures anyway.
//!
//! Invalidation is therefore automatic: a key-ring change alters the DNSKEY
//! wire or key tag, a validity-window rollover alters the embedded
//! inception/expiration, and a serial bump alters the SOA RRset bytes —
//! each lands on a fresh key and recomputes. Stale entries are never
//! *wrong*, only unused, so eviction is a simple size cap.

use std::collections::HashMap;

use sha2::{Digest, Sha256};

use ddx_dns::CanonicalScratch;

/// Entry cap; a full cache resets rather than evicting piecemeal. 64Ki
/// signatures (~4 MiB at RSA-2048 lengths) comfortably covers the largest
/// sandbox zones while bounding a long-lived pipeline process.
const MAX_ENTRIES: usize = 1 << 16;

/// Domain-separation tag for cache-key digests.
const CACHE_TAG: &[u8] = b"ddx-sig-cache-v1";

/// Cache key: digest of (DNSKEY wire ‖ signing payload) plus signature
/// length. See the module docs for why this is collision-sound.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct SigKey {
    digest: [u8; 32],
    sig_len: usize,
}

/// Memo cache mapping signing inputs to raw signature bytes, with reusable
/// scratch buffers for the canonical-form encoder so a warm signing pass
/// performs no per-RRset allocation.
///
/// Every hit/miss is double-counted: into the per-instance counters behind
/// [`SigCache::stats`] (reset by [`SigCache::clear`], scoped to this cache)
/// and into the process-wide `dnssec.sig_cache.*` metrics in the
/// [`ddx_obs`] registry (monotonic, aggregated across all instances and
/// threads). The `dnssec.sig_cache.entries` gauge tracks the size of the
/// most recently mutated instance.
#[derive(Debug, Clone)]
pub struct SigCache {
    map: HashMap<SigKey, Vec<u8>>,
    hits: u64,
    misses: u64,
    /// Scratch: signing payload under construction.
    pub(crate) payload: Vec<u8>,
    /// Scratch: DNSKEY RDATA wire form of the signing key.
    pub(crate) key_wire: Vec<u8>,
    /// Scratch: canonical-form encoder buffers.
    pub(crate) canon: CanonicalScratch,
    /// Global-registry handles; clones share the same cells.
    obs_hits: ddx_obs::Counter,
    obs_misses: ddx_obs::Counter,
    obs_entries: ddx_obs::Gauge,
}

impl Default for SigCache {
    fn default() -> Self {
        Self {
            map: HashMap::new(),
            hits: 0,
            misses: 0,
            payload: Vec::new(),
            key_wire: Vec::new(),
            canon: CanonicalScratch::default(),
            obs_hits: ddx_obs::counter("dnssec.sig_cache.hits", &[]),
            obs_misses: ddx_obs::counter("dnssec.sig_cache.misses", &[]),
            obs_entries: ddx_obs::gauge("dnssec.sig_cache.entries", &[]),
        }
    }
}

/// Counters exposed for tests, benches, and operational logging.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SigCacheStats {
    /// Sign requests answered from the cache.
    pub hits: u64,
    /// Sign requests that had to run the signature expansion.
    pub misses: u64,
    /// Signatures currently held.
    pub entries: usize,
}

impl SigCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Hit/miss counters since construction or the last [`SigCache::clear`].
    pub fn stats(&self) -> SigCacheStats {
        SigCacheStats {
            hits: self.hits,
            misses: self.misses,
            entries: self.map.len(),
        }
    }

    /// Drops all cached signatures and resets the per-instance counters.
    /// Scratch buffers keep their capacity; the global `dnssec.sig_cache.*`
    /// metrics are monotonic and unaffected.
    pub fn clear(&mut self) {
        self.map.clear();
        self.hits = 0;
        self.misses = 0;
        self.obs_entries.set(0);
    }

    pub(crate) fn key(key_wire: &[u8], payload: &[u8], sig_len: usize) -> SigKey {
        let mut h = Sha256::new();
        h.update(CACHE_TAG);
        // Length-prefix the variable-length key wire so (key ‖ payload)
        // splits cannot alias across the boundary.
        h.update((key_wire.len() as u32).to_be_bytes());
        h.update(key_wire);
        h.update(payload);
        SigKey {
            digest: h.finalize().into(),
            sig_len,
        }
    }

    pub(crate) fn get(&mut self, key: &SigKey) -> Option<Vec<u8>> {
        match self.map.get(key) {
            Some(sig) => {
                self.hits += 1;
                self.obs_hits.inc();
                Some(sig.clone())
            }
            None => {
                self.misses += 1;
                self.obs_misses.inc();
                None
            }
        }
    }

    pub(crate) fn insert(&mut self, key: SigKey, sig: Vec<u8>) {
        if self.map.len() >= MAX_ENTRIES {
            self.map.clear();
        }
        self.map.insert(key, sig);
        self.obs_entries.set(self.map.len() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_inputs_distinct_keys() {
        let a = SigCache::key(b"key-a", b"payload", 64);
        let b = SigCache::key(b"key-b", b"payload", 64);
        let c = SigCache::key(b"key-a", b"payloae", 64);
        let d = SigCache::key(b"key-a", b"payload", 32);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn key_boundary_is_unambiguous() {
        // Without the length prefix these two would hash identically.
        let a = SigCache::key(b"ab", b"c", 64);
        let b = SigCache::key(b"a", b"bc", 64);
        assert_ne!(a, b);
    }

    #[test]
    fn global_metrics_track_instance_counters() {
        let hits = ddx_obs::counter("dnssec.sig_cache.hits", &[]);
        let misses = ddx_obs::counter("dnssec.sig_cache.misses", &[]);
        let (h0, m0) = (hits.get(), misses.get());
        let mut cache = SigCache::new();
        let k = SigCache::key(b"key", b"payload", 64);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), vec![0xAB; 64]);
        assert!(cache.get(&k).is_some());
        // Per-instance view is exact; the global registry moved by at
        // least as much (other tests in this process may also bump it).
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert!(hits.get() - h0 >= 1);
        assert!(misses.get() - m0 >= 1);
    }

    #[test]
    fn hit_miss_accounting() {
        let mut cache = SigCache::new();
        let k = SigCache::key(b"key", b"payload", 64);
        assert!(cache.get(&k).is_none());
        cache.insert(k.clone(), vec![0xAB; 64]);
        assert_eq!(cache.get(&k).as_deref(), Some(&[0xAB; 64][..]));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        cache.clear();
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (0, 0, 0));
    }
}
