//! DS record construction and matching (RFC 4034 §5). Digests are computed
//! with the real SHA-1/SHA-256/SHA-384 over `canonical(owner) ‖ DNSKEY
//! RDATA`, so digest-mismatch errors behave exactly as in production.

use sha1::Sha1;
use sha2::{Digest, Sha256, Sha384};

use ddx_dns::{Dnskey, Ds, Name, RData};

use crate::algorithm::DigestType;

/// Computes the DS digest for `dnskey` owned by `owner`.
pub fn compute_digest(owner: &Name, dnskey: &Dnskey, digest_type: DigestType) -> Vec<u8> {
    let mut input = owner.canonical_wire();
    input.extend(RData::Dnskey(dnskey.clone()).to_wire());
    match digest_type {
        DigestType::Sha1 => Sha1::digest(&input).to_vec(),
        DigestType::Sha256 => Sha256::digest(&input).to_vec(),
        DigestType::Sha384 => Sha384::digest(&input).to_vec(),
    }
}

/// Builds the DS record for a DNSKEY (what `dnssec-dsfromkey` prints).
pub fn make_ds(owner: &Name, dnskey: &Dnskey, digest_type: DigestType) -> Ds {
    Ds {
        key_tag: dnskey.key_tag(),
        algorithm: dnskey.algorithm,
        digest_type: digest_type.code(),
        digest: compute_digest(owner, dnskey, digest_type),
    }
}

/// How a DS record relates to a candidate DNSKEY.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DsMatch {
    /// Tag, algorithm, and digest all check out.
    Match,
    /// Key tag differs: this DS does not reference this key.
    TagMismatch,
    /// Tag matches but the algorithm field disagrees with the key.
    AlgorithmMismatch,
    /// Tag and algorithm match but the digest does not verify.
    DigestMismatch,
    /// The digest type is unknown, so the DS cannot be validated.
    UnsupportedDigest,
}

/// Checks whether `ds` authenticates `dnskey` at `owner`.
pub fn check_ds(owner: &Name, ds: &Ds, dnskey: &Dnskey) -> DsMatch {
    if ds.key_tag != dnskey.key_tag() {
        return DsMatch::TagMismatch;
    }
    if ds.algorithm != dnskey.algorithm {
        return DsMatch::AlgorithmMismatch;
    }
    let Some(dt) = DigestType::from_code(ds.digest_type) else {
        return DsMatch::UnsupportedDigest;
    };
    if compute_digest(owner, dnskey, dt) == ds.digest {
        DsMatch::Match
    } else {
        DsMatch::DigestMismatch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::keys::{KeyPair, KeyRole};
    use ddx_dns::name;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn ksk() -> KeyPair {
        KeyPair::generate(
            &mut StdRng::seed_from_u64(10),
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Ksk,
            0,
        )
    }

    #[test]
    fn ds_round_trip_all_digests() {
        let k = ksk();
        for dt in [DigestType::Sha1, DigestType::Sha256, DigestType::Sha384] {
            let ds = make_ds(&name("example.com"), &k.dnskey, dt);
            assert_eq!(ds.digest.len(), dt.digest_len());
            assert_eq!(
                check_ds(&name("example.com"), &ds, &k.dnskey),
                DsMatch::Match
            );
        }
    }

    #[test]
    fn digest_depends_on_owner() {
        let k = ksk();
        let ds = make_ds(&name("example.com"), &k.dnskey, DigestType::Sha256);
        assert_eq!(
            check_ds(&name("other.com"), &ds, &k.dnskey),
            DsMatch::DigestMismatch
        );
    }

    #[test]
    fn owner_case_is_canonicalized() {
        let k = ksk();
        let ds = make_ds(&name("EXAMPLE.com"), &k.dnskey, DigestType::Sha256);
        assert_eq!(
            check_ds(&name("example.COM"), &ds, &k.dnskey),
            DsMatch::Match
        );
    }

    #[test]
    fn tag_mismatch_detected() {
        let k = ksk();
        let mut ds = make_ds(&name("example.com"), &k.dnskey, DigestType::Sha256);
        ds.key_tag = ds.key_tag.wrapping_add(1);
        assert_eq!(
            check_ds(&name("example.com"), &ds, &k.dnskey),
            DsMatch::TagMismatch
        );
    }

    #[test]
    fn algorithm_mismatch_detected() {
        let k = ksk();
        let mut ds = make_ds(&name("example.com"), &k.dnskey, DigestType::Sha256);
        ds.algorithm = 8;
        assert_eq!(
            check_ds(&name("example.com"), &ds, &k.dnskey),
            DsMatch::AlgorithmMismatch
        );
    }

    #[test]
    fn corrupted_digest_detected() {
        let k = ksk();
        let mut ds = make_ds(&name("example.com"), &k.dnskey, DigestType::Sha256);
        ds.digest[0] ^= 0xFF;
        assert_eq!(
            check_ds(&name("example.com"), &ds, &k.dnskey),
            DsMatch::DigestMismatch
        );
    }

    #[test]
    fn unsupported_digest_type() {
        let k = ksk();
        let mut ds = make_ds(&name("example.com"), &k.dnskey, DigestType::Sha256);
        ds.digest_type = 250;
        assert_eq!(
            check_ds(&name("example.com"), &ds, &k.dnskey),
            DsMatch::UnsupportedDigest
        );
    }
}
