//! RRset signing and verification.
//!
//! Signatures are deterministic keyed hashes (see DESIGN.md §4): the
//! "signature" over an RRset is `SHA-256(tag ‖ DNSKEY RDATA ‖ signing
//! payload)` expanded to the algorithm's true signature length. A verifier
//! holding the DNSKEY recomputes and compares. All validation-failure modes
//! the paper measures are metadata-level and behave exactly as with real
//! asymmetric crypto.

use std::cell::RefCell;

use serde::{Deserialize, Serialize};
use sha2::{Digest, Sha256};

use ddx_dns::{CanonicalScratch, Dnskey, Name, RRset, RrType, Rrsig};

use crate::algorithm::Algorithm;
use crate::cache::SigCache;
use crate::keys::KeyPair;

/// Domain-separation tag baked into every simulated signature.
const SIG_TAG: &[u8] = b"ddx-sim-rrsig-v1";

/// Why a signature failed to verify. The variants deliberately mirror the
/// distinctions DNSViz error codes draw. Serialized as part of the grok
/// report's typed `ErrorDetail` payloads (defined downstream in
/// `ddx-dnsviz`, which this crate cannot link to).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum VerifyError {
    /// `now` is past the expiration field.
    Expired { expiration: u32, now: u32 },
    /// `now` is before the inception field.
    NotYetValid { inception: u32, now: u32 },
    /// RRSIG key tag does not match the DNSKEY's tag.
    KeyTagMismatch { rrsig: u16, dnskey: u16 },
    /// RRSIG algorithm differs from the DNSKEY algorithm.
    AlgorithmMismatch { rrsig: u8, dnskey: u8 },
    /// Signer name is not the owner of the DNSKEY.
    SignerMismatch { signer: Name, zone: Name },
    /// The RRSIG Labels field exceeds the owner name's label count.
    BadLabelCount { labels: u8, owner_labels: u8 },
    /// Signature bytes have the wrong length for the algorithm.
    BadSignatureLength { expected: usize, actual: usize },
    /// The DNSKEY lacks the Zone Key flag (RFC 4034 §2.1.1).
    NotZoneKey,
    /// The DNSKEY carries the REVOKE bit (RFC 5011): unusable as trust.
    Revoked,
    /// The cryptographic check itself failed (content or key mismatch).
    BadSignature,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Expired { expiration, now } => {
                write!(f, "signature expired at {expiration}, now {now}")
            }
            VerifyError::NotYetValid { inception, now } => {
                write!(f, "signature not valid before {inception}, now {now}")
            }
            VerifyError::KeyTagMismatch { rrsig, dnskey } => {
                write!(f, "key tag mismatch: rrsig {rrsig} vs dnskey {dnskey}")
            }
            VerifyError::AlgorithmMismatch { rrsig, dnskey } => {
                write!(f, "algorithm mismatch: rrsig {rrsig} vs dnskey {dnskey}")
            }
            VerifyError::SignerMismatch { signer, zone } => {
                write!(f, "signer {signer} is not zone {zone}")
            }
            VerifyError::BadLabelCount {
                labels,
                owner_labels,
            } => write!(f, "labels field {labels} > owner labels {owner_labels}"),
            VerifyError::BadSignatureLength { expected, actual } => {
                write!(f, "signature length {actual}, expected {expected}")
            }
            VerifyError::NotZoneKey => write!(f, "DNSKEY lacks zone-key flag"),
            VerifyError::Revoked => write!(f, "DNSKEY is revoked"),
            VerifyError::BadSignature => write!(f, "signature verification failed"),
        }
    }
}

impl std::error::Error for VerifyError {}

/// Computes the simulated signature bytes for a payload under a key
/// (passed as its DNSKEY RDATA wire form, encoded once by the caller),
/// expanded to the algorithm's natural signature length.
fn raw_signature(dnskey_wire: &[u8], payload: &[u8], sig_len: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(sig_len);
    let mut counter: u32 = 0;
    while out.len() < sig_len {
        let mut h = Sha256::new();
        h.update(SIG_TAG);
        h.update(counter.to_be_bytes());
        h.update(dnskey_wire);
        h.update(payload);
        out.extend_from_slice(&h.finalize());
        counter += 1;
    }
    out.truncate(sig_len);
    out
}

thread_local! {
    /// Encoder buffers reused across the free-function sign/verify paths,
    /// so per-call allocation drops to zero after warm-up.
    static SCRATCH: RefCell<(CanonicalScratch, Vec<u8>, Vec<u8>)> = RefCell::new(Default::default());
}

/// Signature length for an algorithm code, with the historical fallback of
/// 32 bytes for unknown codes.
fn signature_len(algorithm: u8, key_bits: u16) -> usize {
    Algorithm::from_code(algorithm)
        .map(|a| a.signature_len(key_bits))
        .unwrap_or(32)
}

/// Options controlling RRSIG generation.
#[derive(Debug, Clone, Copy)]
pub struct SignOptions {
    /// Inception timestamp.
    pub inception: u32,
    /// Expiration timestamp.
    pub expiration: u32,
}

/// Builds the RRSIG with every field set except the signature bytes.
fn rrsig_template(rrset: &RRset, key: &KeyPair, opts: SignOptions) -> Rrsig {
    // RFC 4034 §3.1.3: the Labels field excludes the root label and any
    // leftmost `*` label, so wildcard-synthesized answers can be validated.
    let mut label_count = rrset.name.label_count() as u8;
    if rrset
        .name
        .labels()
        .first()
        .map(|l| l.as_bytes() == b"*")
        .unwrap_or(false)
    {
        label_count -= 1;
    }
    Rrsig {
        type_covered: rrset.rtype,
        algorithm: key.dnskey.algorithm,
        labels: label_count,
        original_ttl: rrset.ttl,
        expiration: opts.expiration,
        inception: opts.inception,
        key_tag: key.key_tag(),
        signer_name: key.zone.clone(),
        signature: Vec::new(),
    }
}

/// Signs an RRset with `key`, producing an RRSIG whose signer is the key's
/// zone. The RRSIG `labels` field is derived from the owner name.
pub fn sign_rrset(rrset: &RRset, key: &KeyPair, opts: SignOptions) -> Rrsig {
    let mut rrsig = rrsig_template(rrset, key, opts);
    let sig_len = signature_len(key.dnskey.algorithm, key.key_bits);
    rrsig.signature = SCRATCH.with(|s| {
        let (canon, payload, key_wire) = &mut *s.borrow_mut();
        rrset.signing_payload_with(&rrsig, canon, payload);
        key_wire.clear();
        key.dnskey.wire_into(key_wire);
        raw_signature(key_wire, payload, sig_len)
    });
    rrsig
}

/// [`sign_rrset`] with a memo cache: if an identical signing request (same
/// key material, same payload, same length) was answered before, the cached
/// bytes are replayed without recomputing the signature expansion. Output is
/// byte-identical to the uncached path in all cases.
pub fn sign_rrset_cached(
    rrset: &RRset,
    key: &KeyPair,
    opts: SignOptions,
    cache: &mut SigCache,
) -> Rrsig {
    let mut rrsig = rrsig_template(rrset, key, opts);
    let sig_len = signature_len(key.dnskey.algorithm, key.key_bits);
    rrset.signing_payload_with(&rrsig, &mut cache.canon, &mut cache.payload);
    cache.key_wire.clear();
    key.dnskey.wire_into(&mut cache.key_wire);
    let memo_key = SigCache::key(&cache.key_wire, &cache.payload, sig_len);
    if let Some(sig) = cache.get(&memo_key) {
        rrsig.signature = sig;
        return rrsig;
    }
    let sig = raw_signature(&cache.key_wire, &cache.payload, sig_len);
    cache.insert(memo_key, sig.clone());
    rrsig.signature = sig;
    rrsig
}

/// Verifies an RRSIG over an RRset against a candidate DNSKEY owned by
/// `zone`, at validation time `now`.
///
/// Checks are ordered from metadata to cryptography so the caller learns the
/// most specific failure, mirroring how DNSViz distinguishes error codes.
pub fn verify_rrset(
    rrset: &RRset,
    rrsig: &Rrsig,
    dnskey: &Dnskey,
    zone: &Name,
    now: u32,
) -> Result<(), VerifyError> {
    // Ledger first: every *attempted* verification is one unit of logical
    // work, whichever check rejects it — KeyTrap-style zones do their
    // damage with signatures that fail early.
    crate::workload::record_sig_verification();
    if rrsig.key_tag != dnskey.key_tag() {
        return Err(VerifyError::KeyTagMismatch {
            rrsig: rrsig.key_tag,
            dnskey: dnskey.key_tag(),
        });
    }
    if rrsig.algorithm != dnskey.algorithm {
        return Err(VerifyError::AlgorithmMismatch {
            rrsig: rrsig.algorithm,
            dnskey: dnskey.algorithm,
        });
    }
    if &rrsig.signer_name != zone {
        return Err(VerifyError::SignerMismatch {
            signer: rrsig.signer_name.clone(),
            zone: zone.clone(),
        });
    }
    if !dnskey.is_zone_key() {
        return Err(VerifyError::NotZoneKey);
    }
    if dnskey.is_revoked() && rrsig.type_covered != RrType::Dnskey {
        // A revoked key may still self-sign the DNSKEY RRset (RFC 5011),
        // but must not authenticate anything else.
        return Err(VerifyError::Revoked);
    }
    let owner_labels = rrset.name.label_count() as u8;
    if rrsig.labels > owner_labels {
        return Err(VerifyError::BadLabelCount {
            labels: rrsig.labels,
            owner_labels,
        });
    }
    // RFC 4035 §5.3.2: fewer labels than the owner name means the answer
    // was synthesized from a wildcard; reconstruct `*.<suffix>` for the
    // canonical signing form.
    let effective = if rrsig.labels < owner_labels
        && !rrset
            .name
            .labels()
            .first()
            .map(|l| l.as_bytes() == b"*")
            .unwrap_or(false)
    {
        let keep = rrsig.labels as usize;
        let labels = rrset.name.labels();
        let suffix = Name::from_labels(labels[labels.len() - keep..].to_vec())
            .map_err(|_| VerifyError::BadSignature)?;
        let wildcard = suffix.child("*").map_err(|_| VerifyError::BadSignature)?;
        let mut clone = rrset.clone();
        clone.name = wildcard;
        Some(clone)
    } else {
        None
    };
    let rrset = effective.as_ref().unwrap_or(rrset);
    if rrsig.inception > now {
        return Err(VerifyError::NotYetValid {
            inception: rrsig.inception,
            now,
        });
    }
    if rrsig.expiration < now {
        return Err(VerifyError::Expired {
            expiration: rrsig.expiration,
            now,
        });
    }
    let expected_len = signature_len(dnskey.algorithm, (dnskey.public_key.len() * 8) as u16);
    if rrsig.signature.len() != expected_len {
        return Err(VerifyError::BadSignatureLength {
            expected: expected_len,
            actual: rrsig.signature.len(),
        });
    }
    let matches = SCRATCH.with(|s| {
        let (canon, payload, key_wire) = &mut *s.borrow_mut();
        rrset.signing_payload_with(rrsig, canon, payload);
        key_wire.clear();
        dnskey.wire_into(key_wire);
        raw_signature(key_wire, payload, expected_len) == rrsig.signature
    });
    if !matches {
        return Err(VerifyError::BadSignature);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyRole;
    use ddx_dns::{name, RData, Record};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn key(seed: u64) -> KeyPair {
        KeyPair::generate(
            &mut StdRng::seed_from_u64(seed),
            name("example.com"),
            Algorithm::RsaSha256,
            2048,
            KeyRole::Zsk,
            0,
        )
    }

    fn rrset() -> RRset {
        RRset::from_records(&[
            Record::new(
                name("www.example.com"),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, 1)),
            ),
            Record::new(
                name("www.example.com"),
                300,
                RData::A(Ipv4Addr::new(192, 0, 2, 2)),
            ),
        ])
        .unwrap()
    }

    const OPTS: SignOptions = SignOptions {
        inception: 1000,
        expiration: 100_000,
    };

    #[test]
    fn sign_verify_round_trip() {
        let k = key(1);
        let rs = rrset();
        let sig = sign_rrset(&rs, &k, OPTS);
        assert_eq!(sig.signature.len(), 256);
        assert_eq!(sig.labels, 3);
        verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000).unwrap();
    }

    #[test]
    fn cached_signing_matches_uncached() {
        let k = key(1);
        let rs = rrset();
        let mut cache = SigCache::new();
        let cold = sign_rrset(&rs, &k, OPTS);
        let miss = sign_rrset_cached(&rs, &k, OPTS, &mut cache);
        let hit = sign_rrset_cached(&rs, &k, OPTS, &mut cache);
        assert_eq!(cold, miss);
        assert_eq!(cold, hit);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        verify_rrset(&rs, &hit, &k.dnskey, &name("example.com"), 5000).unwrap();
    }

    #[test]
    fn verify_is_rdata_order_insensitive() {
        let k = key(1);
        let rs = rrset();
        let sig = sign_rrset(&rs, &k, OPTS);
        let mut shuffled = rs.clone();
        shuffled.rdatas.reverse();
        verify_rrset(&shuffled, &sig, &k.dnskey, &name("example.com"), 5000).unwrap();
    }

    #[test]
    fn expired_and_not_yet_valid() {
        let k = key(1);
        let rs = rrset();
        let sig = sign_rrset(&rs, &k, OPTS);
        assert!(matches!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 100_001),
            Err(VerifyError::Expired { .. })
        ));
        assert!(matches!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 999),
            Err(VerifyError::NotYetValid { .. })
        ));
    }

    #[test]
    fn wrong_key_fails() {
        let k1 = key(1);
        let k2 = key(2);
        let rs = rrset();
        let sig = sign_rrset(&rs, &k1, OPTS);
        assert!(matches!(
            verify_rrset(&rs, &sig, &k2.dnskey, &name("example.com"), 5000),
            Err(VerifyError::KeyTagMismatch { .. })
        ));
    }

    #[test]
    fn tampered_content_fails() {
        let k = key(1);
        let rs = rrset();
        let sig = sign_rrset(&rs, &k, OPTS);
        let mut tampered = rs.clone();
        tampered.rdatas[0] = RData::A(Ipv4Addr::new(10, 0, 0, 1));
        assert_eq!(
            verify_rrset(&tampered, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn tampered_signature_fails() {
        let k = key(1);
        let rs = rrset();
        let mut sig = sign_rrset(&rs, &k, OPTS);
        sig.signature[0] ^= 0xFF;
        assert_eq!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::BadSignature)
        );
    }

    #[test]
    fn wrong_signer_name() {
        let k = key(1);
        let rs = rrset();
        let mut sig = sign_rrset(&rs, &k, OPTS);
        sig.signer_name = name("evil.com");
        assert!(matches!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::SignerMismatch { .. })
        ));
    }

    #[test]
    fn bad_signature_length() {
        let k = key(1);
        let rs = rrset();
        let mut sig = sign_rrset(&rs, &k, OPTS);
        sig.signature.truncate(10);
        assert!(matches!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::BadSignatureLength {
                expected: 256,
                actual: 10
            })
        ));
    }

    #[test]
    fn bad_label_count() {
        let k = key(1);
        let rs = rrset();
        let mut sig = sign_rrset(&rs, &k, OPTS);
        sig.labels = 9;
        // Recompute signature so only the label check can fail... it will
        // fail before crypto anyway because labels is checked first.
        assert!(matches!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::BadLabelCount {
                labels: 9,
                owner_labels: 3
            })
        ));
    }

    #[test]
    fn revoked_key_cannot_sign_data() {
        let mut k = key(1);
        let rs = rrset();
        k.revoke();
        let sig = sign_rrset(&rs, &k, OPTS);
        assert_eq!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::Revoked)
        );
    }

    #[test]
    fn revoked_key_may_self_sign_dnskey_rrset() {
        let mut k = key(1);
        k.revoke();
        let dnskey_set =
            RRset::singleton(name("example.com"), 3600, RData::Dnskey(k.dnskey.clone()));
        let sig = sign_rrset(&dnskey_set, &k, OPTS);
        verify_rrset(&dnskey_set, &sig, &k.dnskey, &name("example.com"), 5000).unwrap();
    }

    #[test]
    fn non_zone_key_rejected() {
        let mut k = key(1);
        let rs = rrset();
        k.dnskey.flags &= !ddx_dns::DNSKEY_FLAG_ZONE;
        let sig = sign_rrset(&rs, &k, OPTS);
        assert_eq!(
            verify_rrset(&rs, &sig, &k.dnskey, &name("example.com"), 5000),
            Err(VerifyError::NotZoneKey)
        );
    }

    #[test]
    fn ecdsa_signature_length() {
        let k = KeyPair::generate(
            &mut StdRng::seed_from_u64(3),
            name("example.com"),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Zsk,
            0,
        );
        let sig = sign_rrset(&rrset(), &k, OPTS);
        assert_eq!(sig.signature.len(), 64);
        verify_rrset(&rrset(), &sig, &k.dnskey, &name("example.com"), 5000).unwrap();
    }
}
