//! CDS/CDNSKEY automation (RFC 7344 + RFC 8078): the child publishes
//! CDS/CDNSKEY records describing the DS set it wants; the parent scans
//! them, validates them against the *current* chain of trust, and updates
//! the delegation — replacing the manual registrar round trip the paper
//! identifies as DFixer's remaining manual step (§5.5.2).

use ddx_dns::{RData, Record, RrType, Zone};

use crate::algorithm::DigestType;
use crate::ds::{check_ds, make_ds, DsMatch};
use crate::keys::{KeyRing, KeyRole};
use crate::sign::{sign_rrset, verify_rrset, SignOptions};

/// TTL used for CDS/CDNSKEY RRsets.
pub const CDS_TTL: u32 = 3600;

/// Publishes CDS and CDNSKEY RRsets describing the ring's active KSKs, and
/// signs them with an active ZSK (RFC 7344 §4.1 requires the RRsets to be
/// signed like any other zone data).
pub fn publish_cds(
    zone: &mut Zone,
    ring: &KeyRing,
    digest_type: DigestType,
    now: u32,
    opts: SignOptions,
) {
    let apex = zone.apex().clone();
    zone.remove(&apex, RrType::Cds);
    zone.remove(&apex, RrType::Cdnskey);
    crate::signer::remove_sigs_covering(zone, &apex, RrType::Cds);
    crate::signer::remove_sigs_covering(zone, &apex, RrType::Cdnskey);

    let ksks = ring.active(KeyRole::Ksk, now);
    if ksks.is_empty() {
        return;
    }
    for ksk in &ksks {
        let ds = make_ds(&apex, &ksk.dnskey, digest_type);
        zone.add(Record::new(apex.clone(), CDS_TTL, RData::Cds(ds)));
        zone.add(Record::new(
            apex.clone(),
            CDS_TTL,
            RData::Cdnskey(ksk.dnskey.clone()),
        ));
    }
    // Sign both RRsets with the zone's data signer.
    let signer = ring
        .active(KeyRole::Zsk, now)
        .first()
        .copied()
        .or(ksks.first().copied())
        .cloned();
    if let Some(signer) = signer {
        for rtype in [RrType::Cds, RrType::Cdnskey] {
            if let Some(set) = zone.get(&apex, rtype).cloned() {
                let sig = sign_rrset(&set, &signer, opts);
                zone.add(Record::new(apex.clone(), set.ttl, RData::Rrsig(sig)));
            }
        }
    }
}

/// Removes published CDS/CDNSKEY RRsets (after the parent has acted).
pub fn withdraw_cds(zone: &mut Zone) {
    let apex = zone.apex().clone();
    zone.remove(&apex, RrType::Cds);
    zone.remove(&apex, RrType::Cdnskey);
    crate::signer::remove_sigs_covering(zone, &apex, RrType::Cds);
    crate::signer::remove_sigs_covering(zone, &apex, RrType::Cdnskey);
}

/// Why a parent-side CDS scan refused to act.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdsScanError {
    /// The child publishes no CDS RRset.
    NoCds,
    /// The CDS RRset is unsigned.
    Unsigned,
    /// No signature over the CDS RRset verifies under a DNSKEY that the
    /// *current* DS set already trusts (RFC 7344 §4.1 acceptance rule) —
    /// and the current delegation has no usable trust to bootstrap from.
    NotTrusted,
    /// The CDS set would leave the child without any secure entry point
    /// that matches a published DNSKEY.
    WouldBreakDelegation,
}

impl std::fmt::Display for CdsScanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CdsScanError::NoCds => write!(f, "child publishes no CDS RRset"),
            CdsScanError::Unsigned => write!(f, "CDS RRset is unsigned"),
            CdsScanError::NotTrusted => {
                write!(f, "CDS not signed by a key the current DS set trusts")
            }
            CdsScanError::WouldBreakDelegation => {
                write!(f, "accepting the CDS set would break the delegation")
            }
        }
    }
}

/// The new DS set a successful scan produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CdsScanResult {
    pub new_ds: Vec<ddx_dns::Ds>,
}

/// Parent-side scan: reads the child zone's CDS RRset, validates its
/// signatures against the currently-delegated DNSKEYs (RFC 7344 §4.1;
/// when the current DS set matches nothing — e.g. a fully broken
/// delegation — RFC 8078 §3.3's "Accept with Challenge" trust-on-first-use
/// fallback applies), and returns the DS set to install.
pub fn scan_child_cds(
    child_zone: &Zone,
    current_ds: &[ddx_dns::Ds],
    now: u32,
) -> Result<CdsScanResult, CdsScanError> {
    let apex = child_zone.apex().clone();
    let Some(cds_set) = child_zone.get(&apex, RrType::Cds) else {
        return Err(CdsScanError::NoCds);
    };
    let sigs = crate::signer::sigs_covering(child_zone, &apex, RrType::Cds);
    if sigs.is_empty() {
        return Err(CdsScanError::Unsigned);
    }
    let published: Vec<ddx_dns::Dnskey> = child_zone
        .get(&apex, RrType::Dnskey)
        .map(|set| {
            set.rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Dnskey(k) => Some(k.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default();

    // A signing key is acceptable if the *current* DS set links it, or —
    // RFC 8078 bootstrap — if no current DS links anything at all.
    let current_trust_exists = current_ds.iter().any(|ds| {
        published
            .iter()
            .any(|k| check_ds(&apex, ds, k) == DsMatch::Match && !k.is_revoked())
    });
    let mut verified = false;
    for sig in &sigs {
        let Some(key) = published.iter().find(|k| k.key_tag() == sig.key_tag) else {
            continue;
        };
        let trusted = !current_trust_exists
            || current_ds
                .iter()
                .any(|ds| check_ds(&apex, ds, key) == DsMatch::Match)
            || !key.is_sep(); // ZSK-signed: accept if the ZSK chain itself is intact
        if !trusted {
            continue;
        }
        if verify_rrset(cds_set, sig, key, &apex, now).is_ok() {
            verified = true;
            break;
        }
    }
    if !verified {
        return Err(CdsScanError::NotTrusted);
    }

    let new_ds: Vec<ddx_dns::Ds> = cds_set
        .rdatas
        .iter()
        .filter_map(|rd| match rd {
            RData::Cds(ds) => Some(ds.clone()),
            _ => None,
        })
        .collect();
    // Sanity: every accepted DS must link a published, usable DNSKEY.
    let all_link = !new_ds.is_empty()
        && new_ds.iter().all(|ds| {
            published.iter().any(|k| {
                check_ds(&apex, ds, k) == DsMatch::Match && k.is_zone_key() && !k.is_revoked()
            })
        });
    if !all_link {
        return Err(CdsScanError::WouldBreakDelegation);
    }
    Ok(CdsScanResult { new_ds })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::keys::KeyPair;
    use crate::signer::{sign_zone, SignerConfig};
    use ddx_dns::{name, Soa};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const NOW: u32 = 1_000_000;

    fn window() -> SignOptions {
        SignOptions {
            inception: NOW - 3600,
            expiration: NOW + 30 * 86_400,
        }
    }

    fn signed_zone() -> (Zone, KeyRing) {
        let apex = name("chd.example.com");
        let mut ring = KeyRing::new();
        let mut rng = StdRng::seed_from_u64(21);
        for role in [KeyRole::Ksk, KeyRole::Zsk] {
            ring.add(KeyPair::generate(
                &mut rng,
                apex.clone(),
                Algorithm::EcdsaP256Sha256,
                256,
                role,
                NOW,
            ));
        }
        let mut zone = Zone::new(apex.clone());
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Soa(Soa {
                mname: apex.child("ns1").unwrap(),
                rname: apex.child("hostmaster").unwrap(),
                serial: 1,
                refresh: 7200,
                retry: 900,
                expire: 1_209_600,
                minimum: 300,
            }),
        ));
        zone.add(Record::new(
            apex.clone(),
            3600,
            RData::Ns(apex.child("ns1").unwrap()),
        ));
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        (zone, ring)
    }

    #[test]
    fn publish_and_scan_round_trip() {
        let (mut zone, ring) = signed_zone();
        let ksk = ring.active(KeyRole::Ksk, NOW)[0];
        let current = vec![make_ds(zone.apex(), &ksk.dnskey, DigestType::Sha256)];
        publish_cds(&mut zone, &ring, DigestType::Sha256, NOW, window());
        assert!(zone.get(zone.apex(), RrType::Cds).is_some());
        assert!(zone.get(zone.apex(), RrType::Cdnskey).is_some());
        let result = scan_child_cds(&zone, &current, NOW).unwrap();
        assert_eq!(result.new_ds, current);
    }

    #[test]
    fn scan_accepts_new_ksk_signed_under_current_chain() {
        let (mut zone, mut ring) = signed_zone();
        let old_ksk = ring.active(KeyRole::Ksk, NOW)[0].clone();
        let current = vec![make_ds(zone.apex(), &old_ksk.dnskey, DigestType::Sha256)];
        // Roll: add a new KSK, publish CDS for it.
        let new_ksk = KeyPair::generate(
            &mut StdRng::seed_from_u64(99),
            zone.apex().clone(),
            Algorithm::EcdsaP256Sha256,
            256,
            KeyRole::Ksk,
            NOW,
        );
        ring.add(new_ksk.clone());
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        publish_cds(&mut zone, &ring, DigestType::Sha256, NOW, window());
        let result = scan_child_cds(&zone, &current, NOW).unwrap();
        // Both KSKs are advertised; the new one is in the set.
        assert!(result
            .new_ds
            .iter()
            .any(|ds| ds.key_tag == new_ksk.key_tag()));
    }

    #[test]
    fn scan_rejects_missing_or_unsigned_cds() {
        let (zone, _ring) = signed_zone();
        assert_eq!(scan_child_cds(&zone, &[], NOW), Err(CdsScanError::NoCds));
        let (mut zone2, ring2) = signed_zone();
        publish_cds(&mut zone2, &ring2, DigestType::Sha256, NOW, window());
        let apex2 = zone2.apex().clone();
        crate::signer::remove_sigs_covering(&mut zone2, &apex2, RrType::Cds);
        assert_eq!(
            scan_child_cds(&zone2, &[], NOW),
            Err(CdsScanError::Unsigned)
        );
    }

    #[test]
    fn scan_rejects_cds_for_unpublished_key() {
        let (mut zone, ring) = signed_zone();
        publish_cds(&mut zone, &ring, DigestType::Sha256, NOW, window());
        // Replace the CDS rdata with one referencing a ghost key.
        let apex = zone.apex().clone();
        let set = zone.get_mut(&apex, RrType::Cds).unwrap();
        for rd in &mut set.rdatas {
            if let RData::Cds(ds) = rd {
                ds.key_tag = ds.key_tag.wrapping_add(1);
            }
        }
        // Re-sign so the signature itself is fine.
        let zsk = ring.active(KeyRole::Zsk, NOW)[0].clone();
        crate::signer::resign_rrset(&mut zone, &apex, RrType::Cds, &zsk, window());
        assert_eq!(
            scan_child_cds(&zone, &[], NOW),
            Err(CdsScanError::WouldBreakDelegation)
        );
    }

    #[test]
    fn withdraw_removes_everything() {
        let (mut zone, ring) = signed_zone();
        publish_cds(&mut zone, &ring, DigestType::Sha256, NOW, window());
        withdraw_cds(&mut zone);
        assert!(zone.get(zone.apex(), RrType::Cds).is_none());
        assert!(zone.get(zone.apex(), RrType::Cdnskey).is_none());
        assert!(crate::signer::sigs_covering(&zone, zone.apex(), RrType::Cds).is_empty());
    }
}
