//! # ddx-dnssec — the DNSSEC substrate
//!
//! Everything cryptographic (or, per DESIGN.md §4, simulation-cryptographic)
//! sits in this crate: the algorithm registry, key material and lifecycles,
//! RRset signing/verification, DS construction and matching, NSEC3 hashing,
//! denial-of-existence chains and proof checking, and a whole-zone signer
//! modeling `dnssec-signzone`.

pub mod algorithm;
pub mod cache;
pub mod cds;
pub mod denial;
pub mod ds;
pub mod keys;
pub mod nsec3;
pub mod sign;
pub mod signer;
pub mod workload;

pub use algorithm::{Algorithm, DigestType, ALL_ALGORITHMS};
pub use cache::{SigCache, SigCacheStats};
pub use cds::{publish_cds, scan_child_cds, withdraw_cds, CdsScanError, CdsScanResult, CDS_TTL};
pub use denial::{
    build_nsec3_chain, build_nsec_chain, empty_non_terminals, verify_nsec3_denial,
    verify_nsec_denial, DenialFailure, DenialKind, DenialMode,
};
pub use ds::{check_ds, compute_digest, make_ds, DsMatch};
pub use keys::{KeyPair, KeyRing, KeyRole};
pub use nsec3::{
    nsec3_hash, nsec3_hash_uncached, nsec3_label, nsec3_memo_clear, nsec3_memo_stats, nsec3_owner,
    Nsec3Config, NSEC3_HASH_SHA1,
};
pub use sign::{sign_rrset, sign_rrset_cached, verify_rrset, SignOptions, VerifyError};
pub use signer::{
    remove_sigs_covering, resign_rrset, sign_zone, sign_zone_cached, sigs_covering, SignError,
    SignerConfig, DNSKEY_TTL,
};
pub use workload::{work_snapshot, WorkSnapshot};
