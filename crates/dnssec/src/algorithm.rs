//! The DNSSEC algorithm registry and DS digest types, with the
//! implementation-support metadata ZReplicator's algorithm-substitution
//! logic relies on (§5.5.1 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

/// DNSSEC signing algorithms (IANA DNS Security Algorithm Numbers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Algorithm {
    /// 3 — DSA/SHA1 (deprecated).
    Dsa,
    /// 5 — RSA/SHA-1 (deprecated by RFC 8624 but still seen).
    RsaSha1,
    /// 6 — DSA-NSEC3-SHA1 (deprecated, unsupported by modern BIND).
    DsaNsec3Sha1,
    /// 7 — RSASHA1-NSEC3-SHA1.
    RsaSha1Nsec3Sha1,
    /// 8 — RSA/SHA-256.
    RsaSha256,
    /// 10 — RSA/SHA-512.
    RsaSha512,
    /// 13 — ECDSA Curve P-256 with SHA-256.
    EcdsaP256Sha256,
    /// 14 — ECDSA Curve P-384 with SHA-384.
    EcdsaP384Sha384,
    /// 15 — Ed25519.
    Ed25519,
    /// 16 — Ed448.
    Ed448,
}

/// Every algorithm we model, in ascending code order.
pub const ALL_ALGORITHMS: [Algorithm; 10] = [
    Algorithm::Dsa,
    Algorithm::RsaSha1,
    Algorithm::DsaNsec3Sha1,
    Algorithm::RsaSha1Nsec3Sha1,
    Algorithm::RsaSha256,
    Algorithm::RsaSha512,
    Algorithm::EcdsaP256Sha256,
    Algorithm::EcdsaP384Sha384,
    Algorithm::Ed25519,
    Algorithm::Ed448,
];

impl Algorithm {
    /// IANA algorithm number.
    pub fn code(self) -> u8 {
        match self {
            Algorithm::Dsa => 3,
            Algorithm::RsaSha1 => 5,
            Algorithm::DsaNsec3Sha1 => 6,
            Algorithm::RsaSha1Nsec3Sha1 => 7,
            Algorithm::RsaSha256 => 8,
            Algorithm::RsaSha512 => 10,
            Algorithm::EcdsaP256Sha256 => 13,
            Algorithm::EcdsaP384Sha384 => 14,
            Algorithm::Ed25519 => 15,
            Algorithm::Ed448 => 16,
        }
    }

    /// Maps an IANA number back; `None` for unmodeled codes.
    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            3 => Algorithm::Dsa,
            5 => Algorithm::RsaSha1,
            6 => Algorithm::DsaNsec3Sha1,
            7 => Algorithm::RsaSha1Nsec3Sha1,
            8 => Algorithm::RsaSha256,
            10 => Algorithm::RsaSha512,
            13 => Algorithm::EcdsaP256Sha256,
            14 => Algorithm::EcdsaP384Sha384,
            15 => Algorithm::Ed25519,
            16 => Algorithm::Ed448,
            _ => return None,
        })
    }

    /// BIND mnemonic, as passed to `dnssec-keygen -a`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Algorithm::Dsa => "DSA",
            Algorithm::RsaSha1 => "RSASHA1",
            Algorithm::DsaNsec3Sha1 => "DSA-NSEC3-SHA1",
            Algorithm::RsaSha1Nsec3Sha1 => "NSEC3RSASHA1",
            Algorithm::RsaSha256 => "RSASHA256",
            Algorithm::RsaSha512 => "RSASHA512",
            Algorithm::EcdsaP256Sha256 => "ECDSAP256SHA256",
            Algorithm::EcdsaP384Sha384 => "ECDSAP384SHA384",
            Algorithm::Ed25519 => "ED25519",
            Algorithm::Ed448 => "ED448",
        }
    }

    /// Whether a current BIND 9.18 can generate keys/signatures with this
    /// algorithm. DSA variants cannot — ZReplicator must substitute them
    /// (paper §5.5.1, "Algorithm-distribution constraints").
    pub fn supported_by_bind(self) -> bool {
        !matches!(self, Algorithm::Dsa | Algorithm::DsaNsec3Sha1)
    }

    /// True for RSA-family algorithms with operator-selectable key sizes.
    pub fn is_rsa(self) -> bool {
        matches!(
            self,
            Algorithm::RsaSha1
                | Algorithm::RsaSha1Nsec3Sha1
                | Algorithm::RsaSha256
                | Algorithm::RsaSha512
        )
    }

    /// Default key size in bits, mirroring `dnssec-keygen` defaults.
    pub fn default_key_bits(self) -> u16 {
        if self.is_rsa() {
            return 2048;
        }
        match self {
            Algorithm::Dsa | Algorithm::DsaNsec3Sha1 => 1024,
            Algorithm::EcdsaP256Sha256 => 256,
            Algorithm::EcdsaP384Sha384 => 384,
            Algorithm::Ed25519 => 256,
            Algorithm::Ed448 => 456,
            _ => unreachable!("RSA handled above"),
        }
    }

    /// Valid key sizes. Fixed-size algorithms accept exactly one value;
    /// RSA accepts a range (RFC 3110: 512–4096 in practice).
    pub fn key_bits_valid(self, bits: u16) -> bool {
        if self.is_rsa() {
            return (512..=4096).contains(&bits) && bits.is_multiple_of(8);
        }
        match self {
            Algorithm::Dsa | Algorithm::DsaNsec3Sha1 => {
                (512..=1024).contains(&bits) && bits.is_multiple_of(64)
            }
            other => bits == other.default_key_bits(),
        }
    }

    /// Signature length in octets produced by this algorithm (for a given
    /// key size). The simulation pads/derives signatures to this exact
    /// length so "Bad Signature Length" checks are meaningful.
    pub fn signature_len(self, key_bits: u16) -> usize {
        if self.is_rsa() {
            return usize::from(key_bits / 8);
        }
        match self {
            Algorithm::Dsa | Algorithm::DsaNsec3Sha1 => 41,
            Algorithm::EcdsaP256Sha256 => 64,
            Algorithm::EcdsaP384Sha384 => 96,
            Algorithm::Ed25519 => 64,
            Algorithm::Ed448 => 114,
            _ => unreachable!("RSA handled above"),
        }
    }

    /// Whether the algorithm is defined for zones using NSEC3
    /// (RFC 5155 §2: algorithm aliases 6/7 signal NSEC3 awareness; all
    /// algorithms ≥ 8 are NSEC3-capable).
    pub fn nsec3_capable(self) -> bool {
        !matches!(self, Algorithm::Dsa | Algorithm::RsaSha1)
    }

    /// Preferred substitutes when this algorithm cannot be generated
    /// locally, in the order the paper lists (RSASHA256, ECDSAP256SHA256).
    pub fn substitutes(self) -> &'static [Algorithm] {
        &[Algorithm::RsaSha256, Algorithm::EcdsaP256Sha256]
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}({})", self.mnemonic(), self.code())
    }
}

/// DS digest types (IANA Delegation Signer Digest Algorithms).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DigestType {
    /// 1 — SHA-1 (20-octet digest).
    Sha1,
    /// 2 — SHA-256 (32-octet digest).
    Sha256,
    /// 4 — SHA-384 (48-octet digest).
    Sha384,
}

impl DigestType {
    pub fn code(self) -> u8 {
        match self {
            DigestType::Sha1 => 1,
            DigestType::Sha256 => 2,
            DigestType::Sha384 => 4,
        }
    }

    pub fn from_code(code: u8) -> Option<Self> {
        Some(match code {
            1 => DigestType::Sha1,
            2 => DigestType::Sha256,
            4 => DigestType::Sha384,
            _ => return None,
        })
    }

    /// Digest length in octets.
    pub fn digest_len(self) -> usize {
        match self {
            DigestType::Sha1 => 20,
            DigestType::Sha256 => 32,
            DigestType::Sha384 => 48,
        }
    }

    /// `dnssec-dsfromkey` flag selecting this digest (`-1`, `-2`, `-a ...`).
    pub fn dsfromkey_flag(self) -> &'static str {
        match self {
            DigestType::Sha1 => "-1",
            DigestType::Sha256 => "-2",
            DigestType::Sha384 => "-a SHA-384",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip() {
        for alg in ALL_ALGORITHMS {
            assert_eq!(Algorithm::from_code(alg.code()), Some(alg));
        }
        assert_eq!(Algorithm::from_code(0), None);
        assert_eq!(Algorithm::from_code(17), None);
    }

    #[test]
    fn dsa_unsupported_by_bind() {
        assert!(!Algorithm::Dsa.supported_by_bind());
        assert!(!Algorithm::DsaNsec3Sha1.supported_by_bind());
        assert!(Algorithm::RsaSha256.supported_by_bind());
        assert!(Algorithm::Ed25519.supported_by_bind());
    }

    #[test]
    fn key_size_validation() {
        assert!(Algorithm::RsaSha256.key_bits_valid(2048));
        assert!(Algorithm::RsaSha256.key_bits_valid(1024));
        assert!(!Algorithm::RsaSha256.key_bits_valid(100));
        assert!(!Algorithm::RsaSha256.key_bits_valid(8192));
        assert!(Algorithm::EcdsaP256Sha256.key_bits_valid(256));
        assert!(!Algorithm::EcdsaP256Sha256.key_bits_valid(384));
        assert!(Algorithm::Ed448.key_bits_valid(456));
    }

    #[test]
    fn signature_lengths() {
        assert_eq!(Algorithm::RsaSha256.signature_len(2048), 256);
        assert_eq!(Algorithm::EcdsaP256Sha256.signature_len(256), 64);
        assert_eq!(Algorithm::Ed25519.signature_len(256), 64);
        assert_eq!(Algorithm::Ed448.signature_len(456), 114);
    }

    #[test]
    fn nsec3_capability() {
        assert!(!Algorithm::RsaSha1.nsec3_capable());
        assert!(Algorithm::RsaSha1Nsec3Sha1.nsec3_capable());
        assert!(Algorithm::EcdsaP256Sha256.nsec3_capable());
    }

    #[test]
    fn digest_types() {
        for d in [DigestType::Sha1, DigestType::Sha256, DigestType::Sha384] {
            assert_eq!(DigestType::from_code(d.code()), Some(d));
        }
        assert_eq!(DigestType::from_code(3), None);
        assert_eq!(DigestType::Sha1.digest_len(), 20);
        assert_eq!(DigestType::Sha256.digest_len(), 32);
    }
}
