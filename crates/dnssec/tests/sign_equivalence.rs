//! Property test pinning the sign-once pipeline's correctness contract:
//! `sign_zone_cached` must produce a zone byte-identical (canonical wire
//! form) to a cold, cache-disabled `sign_zone` — across NSEC and NSEC3
//! denial modes, multi-algorithm key rings, and warm caches carried over
//! from earlier, different signing passes.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

use ddx_dns::{name, Name, RData, Record, RrType, Soa, Zone};
use ddx_dnssec::{
    sign_zone, sign_zone_cached, Algorithm, KeyPair, KeyRing, KeyRole, Nsec3Config, SigCache,
    SignerConfig,
};

const NOW: u32 = 1_000_000;

/// Algorithms exercised by the ring generator (ECDSA, RSA, EdDSA families).
const ALGS: [(Algorithm, u16); 3] = [
    (Algorithm::EcdsaP256Sha256, 256),
    (Algorithm::RsaSha256, 2048),
    (Algorithm::Ed25519, 256),
];

fn build_ring(apex: &Name, algs: &[usize], seed: u64) -> KeyRing {
    let mut ring = KeyRing::new();
    let mut rng = StdRng::seed_from_u64(seed);
    for &i in algs {
        let (alg, bits) = ALGS[i];
        ring.add(KeyPair::generate(
            &mut rng,
            apex.clone(),
            alg,
            bits,
            KeyRole::Ksk,
            NOW,
        ));
        ring.add(KeyPair::generate(
            &mut rng,
            apex.clone(),
            alg,
            bits,
            KeyRole::Zsk,
            NOW,
        ));
    }
    ring
}

fn build_zone(apex: &Name, hosts: &[String]) -> Zone {
    let mut zone = Zone::new(apex.clone());
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa(Soa {
            mname: apex.child("ns1").unwrap(),
            rname: apex.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    zone.add(Record::new(
        apex.clone(),
        3600,
        RData::Ns(apex.child("ns1").unwrap()),
    ));
    zone.add(Record::new(
        apex.child("ns1").unwrap(),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    for (i, host) in hosts.iter().enumerate() {
        zone.add(Record::new(
            apex.child(host).unwrap(),
            300,
            RData::A(Ipv4Addr::new(198, 51, 100, (i % 250) as u8 + 1)),
        ));
    }
    zone
}

/// Canonical wire form of the whole zone: the byte-level equality the
/// acceptance criterion demands, stricter than `Zone: PartialEq` alone.
fn canonical_bytes(zone: &Zone) -> Vec<u8> {
    let mut out = Vec::new();
    for set in zone.rrsets() {
        out.extend_from_slice(&set.canonical_signing_form(set.ttl));
    }
    out
}

fn signer_config(nsec3: &Option<(u16, Vec<u8>)>) -> SignerConfig {
    match nsec3 {
        None => SignerConfig::nsec_at(NOW),
        Some((iterations, salt)) => SignerConfig::nsec3_at(
            NOW,
            Nsec3Config {
                iterations: *iterations,
                salt: salt.clone(),
                ..Default::default()
            },
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_signing_is_byte_identical_to_cold(
        hosts in proptest::collection::vec("[a-z]{1,12}", 1..12),
        algs in proptest::collection::vec(0usize..ALGS.len(), 1..3),
        nsec3 in proptest::option::of((0u16..30, proptest::collection::vec(any::<u8>(), 0..8))),
        seed in any::<u64>(),
    ) {
        let apex = name("example.com");
        let ring = build_ring(&apex, &algs, seed);
        let cfg = signer_config(&nsec3);

        let mut cold = build_zone(&apex, &hosts);
        sign_zone(&mut cold, &ring, &cfg, NOW).unwrap();

        // Cold cache pass.
        let mut cache = SigCache::new();
        let mut warm1 = build_zone(&apex, &hosts);
        sign_zone_cached(&mut warm1, &ring, &cfg, NOW, &mut cache).unwrap();
        prop_assert_eq!(&cold, &warm1);
        prop_assert_eq!(canonical_bytes(&cold), canonical_bytes(&warm1));

        // Warm cache pass over a fresh copy of the same data.
        let mut warm2 = build_zone(&apex, &hosts);
        sign_zone_cached(&mut warm2, &ring, &cfg, NOW, &mut cache).unwrap();
        prop_assert_eq!(&cold, &warm2);
        prop_assert_eq!(canonical_bytes(&cold), canonical_bytes(&warm2));
        prop_assert!(cache.stats().hits > 0, "warm pass must hit: {:?}", cache.stats());

        // A cache warmed on different data must not contaminate this zone.
        let mut other = build_zone(&apex, &["unrelated".to_string()]);
        sign_zone_cached(&mut other, &ring, &cfg, NOW, &mut cache).unwrap();
        let mut warm3 = build_zone(&apex, &hosts);
        sign_zone_cached(&mut warm3, &ring, &cfg, NOW, &mut cache).unwrap();
        prop_assert_eq!(&cold, &warm3);
    }
}
