//! Property tests for authenticated denial of existence: NSEC/NSEC3 chains
//! built over randomized zones (wildcards, empty non-terminals, opt-out
//! insecure delegations) must always prove NXDOMAIN/NODATA; stripped chains
//! must fail closed; and the server's `ZoneIndex` fast paths must agree
//! with the linear fallback on arbitrary — including malformed — chains.

use std::net::Ipv4Addr;

use proptest::prelude::*;

use ddx_dns::{base32, name, Name, Nsec, Nsec3, RData, Record, RrType, Soa, TypeBitmap, Zone};
use ddx_dnssec::denial::{nsec_covers, Nsec3View, NsecView};
use ddx_dnssec::nsec3::hash_covered;
use ddx_dnssec::{
    build_nsec3_chain, build_nsec_chain, empty_non_terminals, nsec3_hash, verify_nsec3_denial,
    verify_nsec_denial, DenialKind, Nsec3Config,
};
use ddx_server::ZoneIndex;

const APEX: &str = "denial.test";

/// A zone with a configurable host set, deep names (which create empty
/// non-terminals), and an optional apex wildcard. Generated host labels use
/// only `[a-m]`, so `nx…`-prefixed query names and the `zdeleg` delegation
/// never collide with zone content.
fn base_zone(hosts: &[String], deep: &[(String, String)], wildcard: bool) -> Zone {
    let mut z = Zone::new(name(APEX));
    z.add(Record::new(
        name(APEX),
        3600,
        RData::Soa(Soa {
            mname: name(&format!("ns1.{APEX}")),
            rname: name(&format!("hostmaster.{APEX}")),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        name(APEX),
        3600,
        RData::Ns(name(&format!("ns1.{APEX}"))),
    ));
    z.add(Record::new(
        name(&format!("ns1.{APEX}")),
        300,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    for h in hosts {
        z.add(Record::new(
            name(&format!("{h}.{APEX}")),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 80)),
        ));
    }
    for (l1, l2) in deep {
        z.add(Record::new(
            name(&format!("{l1}.{l2}.{APEX}")),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 81)),
        ));
    }
    if wildcard {
        z.add(Record::new(
            name(&format!("*.{APEX}")),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 82)),
        ));
    }
    z
}

fn nsec_views(zone: &Zone) -> Vec<(Name, Nsec)> {
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec)
        .flat_map(|s| {
            s.rdatas.iter().filter_map(move |rd| match rd {
                RData::Nsec(n) => Some((s.name.clone(), n.clone())),
                _ => None,
            })
        })
        .collect()
}

fn nsec3_views(zone: &Zone) -> Vec<(Name, Nsec3)> {
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec3)
        .flat_map(|s| {
            s.rdatas.iter().filter_map(move |rd| match rd {
                RData::Nsec3(n) => Some((s.name.clone(), n.clone())),
                _ => None,
            })
        })
        .collect()
}

fn arb_hosts() -> impl Strategy<Value = Vec<String>> {
    proptest::collection::btree_set("[a-m]{1,6}", 1..6).prop_map(|s| s.into_iter().collect())
}

fn arb_deep() -> impl Strategy<Value = Vec<(String, String)>> {
    proptest::collection::vec(("[a-m]{1,5}", "[a-m]{1,5}"), 0..3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A complete NSEC chain proves NXDOMAIN for any absent name and NODATA
    /// for any present name (including empty non-terminals), with or
    /// without a wildcard.
    #[test]
    fn nsec_chain_proves_nxdomain_and_nodata(
        hosts in arb_hosts(),
        deep in arb_deep(),
        wildcard in any::<bool>(),
        miss in "nx[a-z0-9]{1,5}",
    ) {
        let mut zone = base_zone(&hosts, &deep, wildcard);
        build_nsec_chain(&mut zone);
        let views = nsec_views(&zone);
        let refs: Vec<NsecView> = views.iter().map(|(o, n)| (o, n)).collect();
        let apex = name(APEX);

        let absent = name(&format!("{miss}.{APEX}"));
        prop_assert_eq!(
            verify_nsec_denial(&absent, RrType::A, DenialKind::NxDomain, &refs, &apex),
            Ok(())
        );
        let host = name(&format!("{}.{APEX}", hosts[0]));
        prop_assert_eq!(
            verify_nsec_denial(&host, RrType::Txt, DenialKind::NoData, &refs, &apex),
            Ok(())
        );
        if let Some(ent) = empty_non_terminals(&zone).first() {
            prop_assert_eq!(
                verify_nsec_denial(ent, RrType::Txt, DenialKind::NoData, &refs, &apex),
                Ok(())
            );
        }
    }

    /// Same guarantees for NSEC3, additionally sweeping opt-out, salt, and
    /// iteration count, with an insecure delegation exercising the RFC 5155
    /// §7.1 opt-out skip.
    #[test]
    fn nsec3_chain_proves_nxdomain_and_nodata(
        hosts in arb_hosts(),
        deep in arb_deep(),
        wildcard in any::<bool>(),
        opt_out in any::<bool>(),
        salt in proptest::collection::vec(any::<u8>(), 0..5),
        iterations in 0u16..3,
        miss in "nx[a-z0-9]{1,5}",
    ) {
        let mut zone = base_zone(&hosts, &deep, wildcard);
        // Insecure delegation: no DS, so opt-out chains omit its record.
        zone.add(Record::new(
            name(&format!("zdeleg.{APEX}")),
            300,
            RData::Ns(name("ns.elsewhere.test")),
        ));
        let cfg = Nsec3Config {
            opt_out,
            salt: salt.clone(),
            iterations,
            ..Default::default()
        };
        build_nsec3_chain(&mut zone, &cfg);
        let views = nsec3_views(&zone);
        let refs: Vec<Nsec3View> = views.iter().map(|(o, n)| (o, n)).collect();
        let apex = name(APEX);

        let absent = name(&format!("{miss}.{APEX}"));
        prop_assert_eq!(
            verify_nsec3_denial(&absent, RrType::A, DenialKind::NxDomain, &refs, &apex),
            Ok(())
        );
        let host = name(&format!("{}.{APEX}", hosts[0]));
        prop_assert_eq!(
            verify_nsec3_denial(&host, RrType::Txt, DenialKind::NoData, &refs, &apex),
            Ok(())
        );
        if let Some(ent) = empty_non_terminals(&zone).first() {
            prop_assert_eq!(
                verify_nsec3_denial(ent, RrType::Txt, DenialKind::NoData, &refs, &apex),
                Ok(())
            );
        }
        if opt_out {
            // A name below the opted-out insecure delegation is still
            // denied: the covering arc spans the skipped record.
            let below = name(&format!("{miss}.zdeleg.{APEX}"));
            prop_assert_eq!(
                verify_nsec3_denial(&below, RrType::A, DenialKind::NxDomain, &refs, &apex),
                Ok(())
            );
        }
    }

    /// Closest-encloser search work on adversarial deep-ENT chains is
    /// linear in the query's label count: the thread-local work ledger
    /// must record at most `(labels + 3)` hashed names per proof — the
    /// candidate ancestors plus next-closer and wildcard — each costing
    /// `(iterations + 1)` rounds. A superlinear (or repeated-rehash)
    /// implementation would blow this bound immediately at depth 8+.
    #[test]
    fn nsec3_closest_encloser_work_is_linear_in_labels(
        depth in 1usize..10,
        iterations in 0u16..3,
        salt in proptest::collection::vec(any::<u8>(), 0..5),
        miss in "nx[a-z0-9]{1,5}",
    ) {
        // One leaf hanging `depth` labels below the apex creates a
        // depth-long empty-non-terminal chain — the adversarial shape that
        // maximizes closest-encloser candidates.
        let mut zone = base_zone(&[], &[], false);
        let mut deep = String::new();
        for i in 0..depth {
            deep.push_str(&format!("e{i}."));
        }
        deep.push_str(APEX);
        zone.add(Record::new(
            name(&deep),
            300,
            RData::A(Ipv4Addr::new(192, 0, 2, 83)),
        ));
        let cfg = Nsec3Config {
            salt: salt.clone(),
            iterations,
            ..Default::default()
        };
        build_nsec3_chain(&mut zone, &cfg);
        let views = nsec3_views(&zone);
        let refs: Vec<Nsec3View> = views.iter().map(|(o, n)| (o, n)).collect();
        let apex = name(APEX);

        let absent = name(&format!("{miss}.{deep}"));
        let before = ddx_dnssec::work_snapshot();
        let outcome = verify_nsec3_denial(&absent, RrType::A, DenialKind::NxDomain, &refs, &apex);
        let rounds = ddx_dnssec::work_snapshot().since(&before).nsec3_hash_rounds;
        prop_assert_eq!(outcome, Ok(()));

        let labels = absent.labels().len() as u64;
        let per_hash = iterations as u64 + 1;
        prop_assert!(
            rounds <= (labels + 3) * per_hash,
            "depth {}: {} hash rounds exceeds the linear bound {} \
             (labels={}, iterations={})",
            depth, rounds, (labels + 3) * per_hash, labels, iterations
        );
        prop_assert!(
            rounds >= per_hash,
            "depth {}: the proof hashed nothing — the ledger is not wired",
            depth
        );
    }

    /// Fail-closed: stripping every NSEC record that covers or matches the
    /// query leaves the proof unverifiable — it must error, never pass.
    #[test]
    fn stripped_nsec_chain_fails_closed(
        hosts in arb_hosts(),
        miss in "nx[a-z0-9]{1,5}",
    ) {
        let mut zone = base_zone(&hosts, &[], false);
        build_nsec_chain(&mut zone);
        let apex = name(APEX);
        let absent = name(&format!("{miss}.{APEX}"));
        let views = nsec_views(&zone);
        let kept: Vec<(Name, Nsec)> = views
            .into_iter()
            .filter(|(o, n)| !nsec_covers(o, &n.next_name, &absent, &apex))
            .collect();
        let refs: Vec<NsecView> = kept.iter().map(|(o, n)| (o, n)).collect();
        prop_assert!(
            verify_nsec_denial(&absent, RrType::A, DenialKind::NxDomain, &refs, &apex).is_err()
        );
    }

    /// The ZoneIndex binary-search paths and its linear fallback are
    /// observationally identical on well-formed chains built by the real
    /// chain builders.
    #[test]
    fn zone_index_agrees_on_well_formed_chains(
        hosts in arb_hosts(),
        deep in arb_deep(),
        nsec3 in any::<bool>(),
        salt in proptest::collection::vec(any::<u8>(), 0..5),
        iterations in 0u16..3,
        probes in proptest::collection::vec("[a-z]{1,6}", 1..5),
    ) {
        let mut zone = base_zone(&hosts, &deep, false);
        let cfg = Nsec3Config { salt: salt.clone(), iterations, ..Default::default() };
        if nsec3 {
            build_nsec3_chain(&mut zone, &cfg);
        } else {
            build_nsec_chain(&mut zone);
        }
        let idx = ZoneIndex::build(&zone);
        let apex = name(APEX);
        prop_assert_eq!(idx.uses_nsec3(), nsec3);
        for p in &probes {
            let target = name(&format!("{p}.{APEX}"));
            if nsec3 {
                let (s, i) = idx.nsec3_params().expect("params present");
                prop_assert_eq!((s, i), (&salt[..], iterations));
                prop_assert_eq!(
                    idx.find_nsec3_match(&target, &salt, iterations),
                    naive_nsec3_match(&zone, &target, &salt, iterations).as_ref()
                );
                prop_assert_eq!(
                    idx.find_nsec3_cover(&target, &salt, iterations),
                    naive_nsec3_cover(&zone, &target, &salt, iterations).as_ref()
                );
            } else {
                for nxdomain in [false, true] {
                    prop_assert_eq!(
                        idx.find_first_nsec(&target, nxdomain, &apex),
                        naive_first_nsec(&zone, &target, nxdomain, &apex).as_ref()
                    );
                }
            }
        }
    }

    /// On arbitrarily malformed NSEC chains (dangling nexts, duplicate
    /// RDATAs, broken closure) the index must reproduce the naive
    /// first-match scan exactly.
    #[test]
    fn zone_index_agrees_on_malformed_nsec_chains(
        links in proptest::collection::vec(("[a-m]{1,4}", "[a-m]{1,4}"), 1..8),
        probes in proptest::collection::vec("[a-z]{1,5}", 1..5),
    ) {
        let mut zone = Zone::new(name(APEX));
        for (owner, next) in &links {
            zone.add(Record::new(
                name(&format!("{owner}.{APEX}")),
                300,
                RData::Nsec(Nsec {
                    next_name: name(&format!("{next}.{APEX}")),
                    type_bitmap: TypeBitmap::from_types([RrType::A]),
                }),
            ));
        }
        let idx = ZoneIndex::build(&zone);
        let apex = name(APEX);
        for p in &probes {
            let target = name(&format!("{p}.{APEX}"));
            for nxdomain in [false, true] {
                prop_assert_eq!(
                    idx.find_first_nsec(&target, nxdomain, &apex),
                    naive_first_nsec(&zone, &target, nxdomain, &apex).as_ref(),
                    "target {} nxdomain {}", target, nxdomain
                );
            }
        }
    }

    /// Same for NSEC3 rings with undecodable owners, colliding hashes, and
    /// arbitrary next-hash fields.
    #[test]
    fn zone_index_agrees_on_malformed_nsec3_rings(
        entries in proptest::collection::vec(
            ("[a-m]{1,4}", proptest::collection::vec(any::<u8>(), 0..24), any::<bool>()),
            1..8,
        ),
        salt in proptest::collection::vec(any::<u8>(), 0..4),
        iterations in 0u16..2,
        probes in proptest::collection::vec("[a-z]{1,5}", 1..5),
    ) {
        let mut zone = Zone::new(name(APEX));
        for (label, next_hashed, corrupt_owner) in &entries {
            let owner = if *corrupt_owner {
                // '!' is not base32: the owner hash fails to decode and the
                // index must fall back to the linear scan.
                name(&format!("bad!{label}.{APEX}"))
            } else {
                let h = nsec3_hash(&name(&format!("{label}.{APEX}")), &salt, iterations);
                name(&format!("{}.{APEX}", base32::encode(&h)))
            };
            zone.add(Record::new(
                owner,
                300,
                RData::Nsec3(Nsec3 {
                    hash_algorithm: 1,
                    flags: 0,
                    iterations,
                    salt: salt.clone(),
                    next_hashed_owner: next_hashed.clone(),
                    type_bitmap: TypeBitmap::new(),
                }),
            ));
        }
        let idx = ZoneIndex::build(&zone);
        for p in &probes {
            let target = name(&format!("{p}.{APEX}"));
            prop_assert_eq!(
                idx.find_nsec3_match(&target, &salt, iterations),
                naive_nsec3_match(&zone, &target, &salt, iterations).as_ref()
            );
            prop_assert_eq!(
                idx.find_nsec3_cover(&target, &salt, iterations),
                naive_nsec3_cover(&zone, &target, &salt, iterations).as_ref()
            );
        }
    }
}

// ------------------------------------------------ naive reference scans
// Reimplementations of the server's pre-index linear scans, kept here as
// the independent oracle the fast paths are compared against.

fn naive_first_nsec(zone: &Zone, target: &Name, nxdomain: bool, apex: &Name) -> Option<Name> {
    for set in zone.rrsets().filter(|s| s.rtype == RrType::Nsec) {
        let nexts: Vec<&Name> = set
            .rdatas
            .iter()
            .filter_map(|rd| match rd {
                RData::Nsec(n) => Some(&n.next_name),
                _ => None,
            })
            .collect();
        let matched = if nxdomain || set.name != *target {
            nexts
                .iter()
                .any(|&nx| nsec_covers(&set.name, nx, target, apex) || set.name == *target)
        } else {
            true
        };
        if matched {
            return Some(set.name.clone());
        }
    }
    None
}

fn nsec3_entries(zone: &Zone) -> Vec<(Name, Option<Vec<u8>>, Vec<u8>)> {
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec3)
        .filter_map(|s| match s.rdatas.first() {
            Some(RData::Nsec3(n3)) => {
                let oh = s
                    .name
                    .labels()
                    .first()
                    .and_then(|l| std::str::from_utf8(l.as_bytes()).ok())
                    .and_then(base32::decode);
                Some((s.name.clone(), oh, n3.next_hashed_owner.clone()))
            }
            _ => None,
        })
        .collect()
}

fn naive_nsec3_match(zone: &Zone, target: &Name, salt: &[u8], iterations: u16) -> Option<Name> {
    let h = nsec3_hash(target, salt, iterations);
    nsec3_entries(zone)
        .into_iter()
        .find(|(_, oh, _)| oh.as_deref() == Some(&h[..]))
        .map(|(owner, _, _)| owner)
}

fn naive_nsec3_cover(zone: &Zone, target: &Name, salt: &[u8], iterations: u16) -> Option<Name> {
    let h = nsec3_hash(target, salt, iterations);
    nsec3_entries(zone)
        .into_iter()
        .find(|(_, oh, next)| {
            oh.as_ref()
                .map(|o| hash_covered(o, next, &h))
                .unwrap_or(false)
        })
        .map(|(owner, _, _)| owner)
}
