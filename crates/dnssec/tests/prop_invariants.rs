//! Property-based invariants over the signer and denial chains:
//! 1. every signable RRset of a signed zone verifies under a published key;
//! 2. the NSEC chain proves NXDOMAIN for *any* non-existent name;
//! 3. the NSEC3 chain does the same, at any iteration count;
//! 4. re-signing is idempotent on validity.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::net::Ipv4Addr;

use ddx_dns::{name, Name, RData, Record, RrType, Soa, Zone};
use ddx_dnssec::{
    sign_zone, verify_nsec3_denial, verify_nsec_denial, verify_rrset, Algorithm, DenialKind,
    KeyPair, KeyRing, KeyRole, Nsec3Config, SignerConfig,
};

const NOW: u32 = 1_000_000;

fn build_zone(labels: &[String]) -> Zone {
    let apex = name("prop.example");
    let mut z = Zone::new(apex.clone());
    z.add(Record::new(
        apex.clone(),
        3600,
        RData::Soa(Soa {
            mname: apex.child("ns1").unwrap(),
            rname: apex.child("hostmaster").unwrap(),
            serial: 1,
            refresh: 7200,
            retry: 900,
            expire: 1_209_600,
            minimum: 300,
        }),
    ));
    z.add(Record::new(
        apex.clone(),
        3600,
        RData::Ns(apex.child("ns1").unwrap()),
    ));
    z.add(Record::new(
        apex.child("ns1").unwrap(),
        3600,
        RData::A(Ipv4Addr::new(192, 0, 2, 1)),
    ));
    for (i, label) in labels.iter().enumerate() {
        let owner = apex.child(label).unwrap();
        z.add(Record::new(
            owner,
            300,
            RData::A(Ipv4Addr::new(10, 0, (i / 250) as u8, (i % 250) as u8)),
        ));
    }
    z
}

fn ring() -> KeyRing {
    let mut r = KeyRing::new();
    let mut rng = StdRng::seed_from_u64(11);
    for role in [KeyRole::Ksk, KeyRole::Zsk] {
        r.add(KeyPair::generate(
            &mut rng,
            name("prop.example"),
            Algorithm::EcdsaP256Sha256,
            256,
            role,
            NOW,
        ));
    }
    r
}

fn dnskeys(zone: &Zone) -> Vec<ddx_dns::Dnskey> {
    zone.get(zone.apex(), RrType::Dnskey)
        .map(|s| {
            s.rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Dnskey(k) => Some(k.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

fn signable(zone: &Zone, set: &ddx_dns::RRset) -> bool {
    if set.rtype == RrType::Rrsig || zone.is_below_cut(&set.name) {
        return false;
    }
    let at_cut = set.name != *zone.apex() && zone.get(&set.name, RrType::Ns).is_some();
    !at_cut || matches!(set.rtype, RrType::Ds | RrType::Nsec | RrType::Nsec3)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn signed_zone_fully_verifies(labels in proptest::collection::btree_set("[a-y]{1,10}", 0..20)) {
        let labels: Vec<String> = labels.into_iter().collect();
        let mut zone = build_zone(&labels);
        let ring = ring();
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let keys = dnskeys(&zone);
        for set in zone.rrsets().filter(|s| s.rtype != RrType::Rrsig) {
            let sigs = ddx_dnssec::sigs_covering(&zone, &set.name, set.rtype);
            if !signable(&zone, set) {
                continue;
            }
            prop_assert!(!sigs.is_empty(), "{} {} unsigned", set.name, set.rtype);
            let ok = sigs.iter().any(|sig| {
                keys.iter().any(|k| {
                    verify_rrset(set, sig, k, zone.apex(), NOW).is_ok()
                })
            });
            prop_assert!(ok, "{} {} does not verify", set.name, set.rtype);
        }
    }

    #[test]
    fn nsec_chain_denies_any_absent_name(
        labels in proptest::collection::btree_set("[a-y]{1,10}", 1..15),
        probe in "[a-z0-9]{1,14}",
    ) {
        let labels: Vec<String> = labels.into_iter().collect();
        let mut zone = build_zone(&labels);
        sign_zone(&mut zone, &ring(), &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let target = zone.apex().child(&probe).unwrap();
        prop_assume!(!zone.has_name(&target));
        let views: Vec<(Name, ddx_dns::Nsec)> = zone
            .rrsets()
            .filter(|s| s.rtype == RrType::Nsec)
            .flat_map(|s| s.rdatas.iter().filter_map(move |rd| match rd {
                RData::Nsec(n) => Some((s.name.clone(), n.clone())),
                _ => None,
            }))
            .collect();
        let refs: Vec<(&Name, &ddx_dns::Nsec)> = views.iter().map(|(o, n)| (o, n)).collect();
        prop_assert!(verify_nsec_denial(
            &target,
            RrType::A,
            DenialKind::NxDomain,
            &refs,
            zone.apex(),
        ).is_ok(), "{target} not denied");
    }

    #[test]
    fn nsec3_chain_denies_any_absent_name(
        labels in proptest::collection::btree_set("[a-y]{1,10}", 1..15),
        probe in "[a-z0-9]{1,14}",
        iterations in 0u16..20,
        salt_len in 0usize..8,
    ) {
        let labels: Vec<String> = labels.into_iter().collect();
        let mut zone = build_zone(&labels);
        let cfg = Nsec3Config {
            iterations,
            salt: vec![0x5A; salt_len],
            ..Default::default()
        };
        sign_zone(&mut zone, &ring(), &SignerConfig::nsec3_at(NOW, cfg), NOW).unwrap();
        let target = zone.apex().child(&probe).unwrap();
        prop_assume!(!zone.has_name(&target));
        let views: Vec<(Name, ddx_dns::Nsec3)> = zone
            .rrsets()
            .filter(|s| s.rtype == RrType::Nsec3)
            .flat_map(|s| s.rdatas.iter().filter_map(move |rd| match rd {
                RData::Nsec3(n) => Some((s.name.clone(), n.clone())),
                _ => None,
            }))
            .collect();
        let refs: Vec<(&Name, &ddx_dns::Nsec3)> = views.iter().map(|(o, n)| (o, n)).collect();
        prop_assert!(verify_nsec3_denial(
            &target,
            RrType::A,
            DenialKind::NxDomain,
            &refs,
            zone.apex(),
        ).is_ok(), "{target} not denied (iterations={iterations})");
    }

    #[test]
    fn resigning_preserves_validity(labels in proptest::collection::btree_set("[a-y]{1,10}", 0..10)) {
        let labels: Vec<String> = labels.into_iter().collect();
        let mut zone = build_zone(&labels);
        let ring = ring();
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW), NOW).unwrap();
        let serial1 = zone.soa().unwrap().serial;
        sign_zone(&mut zone, &ring, &SignerConfig::nsec_at(NOW + 100), NOW + 100).unwrap();
        prop_assert_eq!(zone.soa().unwrap().serial, serial1 + 1);
        let keys = dnskeys(&zone);
        let soa_set = zone.get(zone.apex(), RrType::Soa).unwrap();
        let sigs = ddx_dnssec::sigs_covering(&zone, zone.apex(), RrType::Soa);
        let resigned_ok = sigs.iter().any(|sig| {
            keys.iter()
                .any(|k| verify_rrset(soa_set, sig, k, zone.apex(), NOW + 100).is_ok())
        });
        prop_assert!(resigned_ok);
    }
}
