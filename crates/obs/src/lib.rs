//! Process-wide metrics registry for the ddx workspace.
//!
//! Every layer of the pipeline (signing memos, answer memo, fault decorator,
//! probe walk, grok passes, fixer, pipeline stages) registers counters,
//! gauges, and fixed-bucket latency histograms here, keyed by a `&'static
//! str` name plus a small label set. The registry is the single place all
//! of those numbers can be read back from: [`Registry::snapshot`] freezes
//! the current values into a serde-friendly [`MetricsSnapshot`] that can be
//! diffed against an earlier snapshot, dumped as JSON (`--metrics-out`), or
//! rendered as a run-report table.
//!
//! Design constraints:
//!
//! - **Cheap hot path.** Handles ([`Counter`], [`Gauge`], [`Histogram`])
//!   are `Arc`-backed atomics; instrumented code looks a handle up once
//!   (at construction or per run) and then bumps it with a single relaxed
//!   atomic op. The registry lock is only taken when a handle is created.
//! - **Thread-safe by construction.** All mutation is atomic; the registry
//!   itself is a `RwLock` over the name→handle maps. Per-thread caches
//!   (the NSEC3 memo, the trace-event buffer) bump the shared handles
//!   directly, so parallel workers aggregate into one set of totals.
//! - **No new dependencies.** Only `serde`/`serde_json`, which the
//!   workspace already carries for every other crate.
//!
//! Metric naming follows `crate.subsystem.event` with optional labels, e.g.
//! `server.fault.injected{kind=timeout}` — see DESIGN.md §11 for the full
//! scheme and the recipe for adding a metric.

mod snapshot;

pub use snapshot::{HistogramSnapshot, MetricsSnapshot};

use std::collections::HashMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Default histogram bucket upper bounds, in microseconds. Chosen to span
/// the sub-millisecond memo hits up through multi-second corpus stages;
/// values above the last bound land in a final overflow bucket.
pub const DEFAULT_LATENCY_BOUNDS_US: &[u64] = &[
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 5_000_000,
];

/// A metric identity: a static name plus a small, sorted label set.
///
/// Labels are sorted by key at construction so that the same logical metric
/// always resolves to the same entry (and renders identically) regardless
/// of the order the call site listed them in.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct MetricKey {
    name: &'static str,
    labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels.sort_unstable_by(|a, b| a.0.cmp(b.0));
        Self { name, labels }
    }

    /// Render as `name` or `name{k=v,k2=v2}` — the form snapshot maps are
    /// keyed by.
    fn render(&self) -> String {
        if self.labels.is_empty() {
            return self.name.to_string();
        }
        let mut out = String::with_capacity(self.name.len() + 16);
        out.push_str(self.name);
        out.push('{');
        for (i, (k, v)) in self.labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push('=');
            out.push_str(v);
        }
        out.push('}');
        out
    }
}

/// A monotonically increasing counter. Clones share the same cell, so a
/// handle can be cached per-instance or per-thread and bumped lock-free.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry — useful for per-instance
    /// legacy stats that share the `Counter` API but are not global.
    pub fn detached() -> Self {
        Self::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge (set/adjust semantics, e.g. live entry counts).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramCore {
    bounds: &'static [u64],
    /// One slot per bound plus a trailing overflow bucket; slot `i` counts
    /// values `v` with `bounds[i-1] < v <= bounds[i]`.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
}

/// A fixed-bucket histogram; values are microseconds under the default
/// bounds, but any `u64` scale works with explicit bounds.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    fn with_bounds(bounds: &'static [u64]) -> Self {
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self(Arc::new(HistogramCore {
            bounds,
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }))
    }

    pub fn record(&self, value: u64) {
        // First bucket whose bound is >= value; everything above the last
        // bound falls into the overflow slot at `bounds.len()`.
        let idx = self.0.bounds.partition_point(|&b| value > b);
        self.0.counts[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// RAII timer: records the elapsed wall time (µs) when dropped.
    pub fn start_timer(&self) -> Timer {
        Timer {
            hist: self.clone(),
            start: Instant::now(),
        }
    }

    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    fn freeze(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.0.bounds.to_vec(),
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count(),
            sum: self.sum(),
        }
    }
}

/// Records elapsed wall time into a [`Histogram`] on drop.
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Instant,
}

impl Drop for Timer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

/// The metrics registry: three name→handle maps behind `RwLock`s. Handle
/// lookup takes the read lock on the happy path and the write lock only on
/// first registration; bumping a handle never touches the registry.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<HashMap<MetricKey, Counter>>,
    gauges: RwLock<HashMap<MetricKey, Gauge>>,
    histograms: RwLock<HashMap<MetricKey, Histogram>>,
}

fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

impl Registry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or register the counter `name{labels}`.
    pub fn counter(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
        let key = MetricKey::new(name, labels);
        if let Some(c) = read_lock(&self.counters).get(&key) {
            return c.clone();
        }
        write_lock(&self.counters).entry(key).or_default().clone()
    }

    /// Get or register the gauge `name{labels}`.
    pub fn gauge(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
        let key = MetricKey::new(name, labels);
        if let Some(g) = read_lock(&self.gauges).get(&key) {
            return g.clone();
        }
        write_lock(&self.gauges).entry(key).or_default().clone()
    }

    /// Get or register a histogram with the default latency bounds (µs).
    pub fn histogram(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
        self.histogram_with_bounds(name, labels, DEFAULT_LATENCY_BOUNDS_US)
    }

    /// Get or register a histogram with explicit bucket bounds. The bounds
    /// of the first registration win; later callers share that histogram.
    pub fn histogram_with_bounds(
        &self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &'static [u64],
    ) -> Histogram {
        let key = MetricKey::new(name, labels);
        if let Some(h) = read_lock(&self.histograms).get(&key) {
            return h.clone();
        }
        write_lock(&self.histograms)
            .entry(key)
            .or_insert_with(|| Histogram::with_bounds(bounds))
            .clone()
    }

    /// Freeze every registered metric into a [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::default();
        for (key, c) in read_lock(&self.counters).iter() {
            snap.counters.insert(key.render(), c.get());
        }
        for (key, g) in read_lock(&self.gauges).iter() {
            snap.gauges.insert(key.render(), g.get());
        }
        for (key, h) in read_lock(&self.histograms).iter() {
            snap.histograms.insert(key.render(), h.freeze());
        }
        snap
    }
}

/// The process-wide registry every ddx crate reports into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Get or register a counter on the global registry.
pub fn counter(name: &'static str, labels: &[(&'static str, &str)]) -> Counter {
    global().counter(name, labels)
}

/// Get or register a gauge on the global registry.
pub fn gauge(name: &'static str, labels: &[(&'static str, &str)]) -> Gauge {
    global().gauge(name, labels)
}

/// Get or register a histogram (default µs bounds) on the global registry.
pub fn histogram(name: &'static str, labels: &[(&'static str, &str)]) -> Histogram {
    global().histogram(name, labels)
}

/// Snapshot the global registry.
pub fn snapshot() -> MetricsSnapshot {
    global().snapshot()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = Registry::new();
        let a = reg.counter("test.counter", &[]);
        let b = reg.counter("test.counter", &[]);
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(b.get(), 3);
    }

    #[test]
    fn labels_are_order_insensitive() {
        let reg = Registry::new();
        let a = reg.counter("test.labeled", &[("x", "1"), ("y", "2")]);
        let b = reg.counter("test.labeled", &[("y", "2"), ("x", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counters.get("test.labeled{x=1,y=2}"), Some(&1));
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        const THREADS: usize = 8;
        const BUMPS: u64 = 10_000;
        let reg = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            handles.push(thread::spawn(move || {
                let c = reg.counter("test.concurrent", &[]);
                let h = reg.histogram("test.concurrent_us", &[]);
                for i in 0..BUMPS {
                    c.inc();
                    h.record(i % 7);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            reg.counter("test.concurrent", &[]).get(),
            THREADS as u64 * BUMPS
        );
        assert_eq!(
            reg.histogram("test.concurrent_us", &[]).count(),
            THREADS as u64 * BUMPS
        );
    }

    #[test]
    fn histogram_bucket_boundaries_are_stable() {
        static BOUNDS: &[u64] = &[10, 100, 1_000];
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("test.hist", &[], BOUNDS);
        // Boundary values land in the bucket they bound (v <= bound).
        for v in [0, 10] {
            h.record(v);
        }
        for v in [11, 100] {
            h.record(v);
        }
        for v in [101, 1_000] {
            h.record(v);
        }
        for v in [1_001, u64::MAX] {
            h.record(v);
        }
        let snap = h.freeze();
        assert_eq!(snap.bounds, vec![10, 100, 1_000]);
        assert_eq!(snap.counts, vec![2, 2, 2, 2]);
        assert_eq!(snap.count, 8);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("test.gauge", &[]);
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        assert_eq!(reg.snapshot().gauges.get("test.gauge"), Some(&3));
    }

    #[test]
    fn timer_records_into_histogram() {
        let reg = Registry::new();
        let h = reg.histogram("test.timer_us", &[]);
        {
            let _t = h.start_timer();
        }
        assert_eq!(h.count(), 1);
    }
}
