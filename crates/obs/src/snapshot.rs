//! Frozen registry state: serde-friendly, diffable, renderable.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// A frozen histogram: bucket upper bounds, per-bucket counts (one extra
/// trailing overflow bucket), and total count/sum.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean recorded value (µs under the default bounds); 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Quantile estimate from the bucketed counts: the upper bound of the
    /// bucket holding the q-th sample (`0.0 < q <= 1.0`). Samples in the
    /// overflow bucket report the last finite bound. Returns 0 when empty.
    /// An upper-bound estimate is coarse but monotone and never understates
    /// a tail — the right bias for latency SLO reporting.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 || self.bounds.is_empty() {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let idx = i.min(self.bounds.len() - 1);
                return self.bounds[idx];
            }
        }
        *self.bounds.last().expect("bounds checked non-empty")
    }
}

/// Every registered metric at one instant, keyed by the rendered
/// `name{label=value,...}` form. `BTreeMap` keys make serialization
/// deterministic, so JSON round-trips are byte-for-byte stable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The change from `earlier` to `self`. Counters and histogram counts
    /// subtract saturating (a restarted process reads as zero, not a
    /// huge wraparound); gauges subtract signed. Metrics present only in
    /// `earlier` are dropped; metrics present only in `self` keep their
    /// full value. Unchanged metrics stay in the result with a zero delta,
    /// so a no-op interval diffs to an all-zero snapshot over the same keys.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::default();
        for (k, v) in &self.counters {
            let prev = earlier.counters.get(k).copied().unwrap_or(0);
            out.counters.insert(k.clone(), v.saturating_sub(prev));
        }
        for (k, v) in &self.gauges {
            let prev = earlier.gauges.get(k).copied().unwrap_or(0);
            out.gauges.insert(k.clone(), v.wrapping_sub(prev));
        }
        for (k, h) in &self.histograms {
            let d = match earlier.histograms.get(k) {
                Some(prev) if prev.bounds == h.bounds && prev.counts.len() == h.counts.len() => {
                    HistogramSnapshot {
                        bounds: h.bounds.clone(),
                        counts: h
                            .counts
                            .iter()
                            .zip(&prev.counts)
                            .map(|(a, b)| a.saturating_sub(*b))
                            .collect(),
                        count: h.count.saturating_sub(prev.count),
                        sum: h.sum.saturating_sub(prev.sum),
                    }
                }
                _ => h.clone(),
            };
            out.histograms.insert(k.clone(), d);
        }
        out
    }

    /// True when every counter and gauge is zero and every histogram is
    /// empty — what `now.diff(&now)` produces.
    pub fn is_zero(&self) -> bool {
        self.counters.values().all(|&v| v == 0)
            && self.gauges.values().all(|&v| v == 0)
            && self.histograms.values().all(|h| h.count == 0 && h.sum == 0)
    }

    /// Pretty-printed JSON; deterministic for a given snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot maps serialize infallibly")
    }

    pub fn from_json(s: &str) -> Result<MetricsSnapshot, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Render the snapshot as a markdown run report: a counter table, a
    /// gauge table, and a histogram table (count / total / mean). Markdown
    /// reads fine in a terminal and renders as real tables in CI job
    /// summaries.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        out.push_str("## Run metrics\n");
        if !self.counters.is_empty() {
            out.push_str("\n| counter | value |\n|---|---:|\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("| `{k}` | {v} |\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("\n| gauge | value |\n|---|---:|\n");
            for (k, v) in &self.gauges {
                out.push_str(&format!("| `{k}` | {v} |\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str(
                "\n| histogram | count | total (µs) | mean (µs) |\n|---|---:|---:|---:|\n",
            );
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "| `{k}` | {} | {} | {:.1} |\n",
                    h.count,
                    h.sum,
                    h.mean()
                ));
            }
        }
        if self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty() {
            out.push_str("\n(no metrics recorded)\n");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample_registry() -> Registry {
        let reg = Registry::new();
        reg.counter("a.hits", &[]).add(3);
        reg.counter("a.misses", &[("kind", "cold")]).add(1);
        reg.gauge("a.entries", &[]).set(7);
        let h = reg.histogram("a.lat_us", &[]);
        h.record(40);
        h.record(400);
        h.record(9_000_000);
        reg
    }

    #[test]
    fn serde_round_trips_byte_for_byte() {
        let snap = sample_registry().snapshot();
        let json = snap.to_json();
        let back = MetricsSnapshot::from_json(&json).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn noop_interval_diffs_to_all_zeros() {
        let reg = sample_registry();
        let before = reg.snapshot();
        let after = reg.snapshot();
        let d = after.diff(&before);
        assert!(d.is_zero(), "no-op diff must be all zeros: {}", d.to_json());
        // Same keys survive with zero values.
        assert_eq!(
            d.counters.keys().collect::<Vec<_>>(),
            before.counters.keys().collect::<Vec<_>>()
        );
    }

    #[test]
    fn diff_reports_interval_deltas() {
        let reg = sample_registry();
        let before = reg.snapshot();
        reg.counter("a.hits", &[]).add(5);
        reg.gauge("a.entries", &[]).set(2);
        reg.histogram("a.lat_us", &[]).record(60);
        let d = reg.snapshot().diff(&before);
        assert_eq!(d.counters.get("a.hits"), Some(&5));
        assert_eq!(d.counters.get("a.misses{kind=cold}"), Some(&0));
        assert_eq!(d.gauges.get("a.entries"), Some(&-5));
        let h = d.histograms.get("a.lat_us").unwrap();
        assert_eq!(h.count, 1);
        assert_eq!(h.sum, 60);
    }

    #[test]
    fn quantile_reads_bucket_upper_bounds() {
        let reg = Registry::new();
        let h = reg.histogram_with_bounds("q.lat_us", &[], &[10, 100, 1_000]);
        for _ in 0..98 {
            h.record(5); // bucket ≤10
        }
        h.record(500); // bucket ≤1_000
        h.record(5_000); // overflow bucket
        let snap = reg.snapshot();
        let hs = snap.histograms.get("q.lat_us").unwrap();
        assert_eq!(hs.quantile(0.50), 10);
        assert_eq!(hs.quantile(0.98), 10);
        assert_eq!(hs.quantile(0.99), 1_000);
        // Overflow samples clamp to the last finite bound.
        assert_eq!(hs.quantile(1.0), 1_000);
        assert_eq!(HistogramSnapshot::default().quantile(0.5), 0);
    }

    #[test]
    fn report_renders_all_sections() {
        let report = sample_registry().snapshot().render_report();
        assert!(report.contains("| counter |"));
        assert!(report.contains("| `a.hits` | 3 |"));
        assert!(report.contains("| gauge |"));
        assert!(report.contains("| histogram |"));
        assert!(report.contains("| `a.lat_us` | 3 |"));
    }
}
