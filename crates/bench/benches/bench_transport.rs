//! Transport ablation: the in-process network vs real loopback UDP with
//! full wire encoding, for a single probe walk of the sandbox hierarchy.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use ddx_dnsviz::probe;
use ddx_replicator::{replicate, ReplicationRequest, ZoneMeta};
use ddx_server::{Network, UdpNetwork, UdpServerHandle};

fn bench(c: &mut Criterion) {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, 1_000_000, 2).unwrap();

    c.bench_function("probe_in_process", |b| {
        b.iter(|| probe(&rep.sandbox.testbed, &rep.probe))
    });

    // Lift onto UDP once; reuse sockets across iterations.
    let mut handles: Vec<UdpServerHandle> = Vec::new();
    let mut net = UdpNetwork::new();
    for zone in &rep.sandbox.zones {
        for sid in &zone.servers {
            let server = rep.sandbox.testbed.server(sid).unwrap().clone();
            let handle = UdpServerHandle::spawn(server).unwrap();
            net.add_route(&handle);
            handles.push(handle);
        }
        for host in &zone.ns_hosts {
            if let Some(sid) = rep.sandbox.testbed.resolve_ns(host) {
                net.register_ns(host.clone(), sid);
            }
        }
    }
    c.bench_function("probe_over_udp", |b| b.iter(|| probe(&net, &rep.probe)));
}

criterion_group!(benches, bench);
criterion_main!(benches);
