//! The payoff measurement for the query-path overhaul: identical probe
//! walks over (a) the memoized, index-backed testbed and (b) the
//! [`UncachedNetwork`] view that forces the original linear-scan path, plus
//! a hot single-query comparison of `handle_arc` vs `handle_uncached`.
//!
//! Protocol (recorded in `BENCH_pr3.json`): run `steady_state` variants on
//! a prepared testbed whose memo has been warmed by one probe — the
//! steady-state regime of a multi-iteration DFixer run, where the bulk of
//! queries repeat against unchanged zones.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use ddx_dns::{name, Message, RrType};
use ddx_dnsviz::{grok, probe};
use ddx_replicator::{replicate, ReplicationRequest, ZoneMeta};
use ddx_server::{Network, Testbed, UncachedNetwork};

fn prepared() -> (Testbed, ddx_dnsviz::ProbeConfig) {
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&request, 1_000_000, 0xB3C4).unwrap();
    (rep.sandbox.testbed, rep.probe)
}

fn bench(c: &mut Criterion) {
    let (testbed, cfg) = prepared();

    // Warm the memo: everything the walk asks is cached from here on.
    let _ = grok(&probe(&testbed, &cfg));

    c.bench_function("probe_walk_memoized_steady_state", |b| {
        b.iter(|| probe(&testbed, &cfg))
    });
    c.bench_function("probe_walk_uncached", |b| {
        let uncached = UncachedNetwork(&testbed);
        b.iter(|| probe(&uncached, &cfg))
    });
    c.bench_function("probe_and_grok_memoized", |b| {
        b.iter(|| grok(&probe(&testbed, &cfg)))
    });

    // Hot single-answer comparison on one leaf server: memo hit (pointer
    // bump) vs full linear-scan reassembly.
    let sid = testbed
        .server_ids()
        .into_iter()
        .max_by_key(|s| s.0.len())
        .unwrap();
    let server = testbed.server(&sid).unwrap().clone();
    let apex = server.apexes().into_iter().next().unwrap();
    let q = Message::query(1, apex.clone(), RrType::Soa);
    let nx = Message::query(4, apex.child("nx-bench").unwrap(), RrType::A);
    let _ = server.handle_arc(&q);
    let _ = server.handle_arc(&nx);

    c.bench_function("handle_soa_memoized", |b| b.iter(|| server.handle_arc(&q)));
    c.bench_function("handle_soa_uncached", |b| {
        b.iter(|| server.handle_uncached(&q))
    });
    c.bench_function("handle_nxdomain_memoized", |b| {
        b.iter(|| server.handle_arc(&nx))
    });
    c.bench_function("handle_nxdomain_uncached", |b| {
        b.iter(|| server.handle_uncached(&nx))
    });

    // Keep the routing helper honest under both views (and keep the
    // compiler from eliding the query messages).
    let resolved = testbed.resolve_ns(&name("nonexistent-ns.invalid"));
    assert!(resolved.is_none());
}

criterion_group!(benches, bench);
criterion_main!(benches);
