//! Shard ablation: the cost of a memoized answer on the sharded memo —
//! single-threaded (pure overhead vs the old single-map memo) and with 8
//! threads hammering one server (the contention case sharding exists for)
//! — plus the `encode` vs `encode_into` buffer-reuse split the batched
//! transport and loadgen rely on.
//!
//! Full transport scaling (worker counts, batched syscalls, rate limiting)
//! is measured by `ddx-loadgen --scan-workers` per EXPERIMENTS.md; keeping
//! it out of criterion keeps the CI bench smoke fast.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ddx_dns::{name, wire, Message, RrType};
use ddx_server::sandbox::{build_sandbox, ZoneSpec};

fn bench(c: &mut Criterion) {
    let sb = build_sandbox(&[ZoneSpec::conventional(name("bench.test"))], 1_000_000, 7);
    let server = sb.testbed.server(&sb.zones[0].servers[0]).unwrap().clone();
    let q = Message::query(1, name("www.bench.test"), RrType::A);
    // Populate the memo so every measured call is a hit.
    let warm = server.handle(&q).expect("sandbox answers www");

    c.bench_function("memo_hit_sharded_single_thread", |b| {
        b.iter(|| black_box(server.handle(&q)))
    });

    c.bench_function("memo_hit_sharded_8_threads", |b| {
        b.iter_custom(|iters| {
            let started = std::time::Instant::now();
            std::thread::scope(|scope| {
                for t in 0..8u16 {
                    let server = &server;
                    scope.spawn(move || {
                        let q = Message::query(t + 2, name("www.bench.test"), RrType::A);
                        for _ in 0..iters {
                            black_box(server.handle(&q));
                        }
                    });
                }
            });
            started.elapsed()
        })
    });

    c.bench_function("wire_encode_fresh_alloc", |b| {
        b.iter(|| black_box(wire::encode(&warm)))
    });
    c.bench_function("wire_encode_into_reused_buf", |b| {
        let mut buf = Vec::with_capacity(1_024);
        b.iter(|| {
            wire::encode_into(&warm, &mut buf);
            black_box(buf.len())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
