//! The Table 6 pipeline, per snapshot: replicate → grok (GE) → DFixer →
//! grok (AE) for the S1 (NZIC-only) and a representative S2 scenario, plus
//! the scratch-vs-incremental revalidation rows backing `BENCH_pr8.json`:
//! a deep delegation chain converged by the fixer with memoization off/on,
//! and steady-state revalidation sweeps over 8/64/256 sibling zones.

use std::collections::BTreeSet;

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};

use ddx_dns::{name, RrType};
use ddx_dnsviz::{grok, probe, ErrorCode, GrokMemo, ProbeConfig, RetryPolicy};
use ddx_fixer::{run_fixer, FixerOptions};
use ddx_replicator::{replicate, Nsec3Meta, ReplicationRequest, ZoneMeta};
use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

const NOW: u32 = 1_000_000;

fn meta_nsec3() -> ZoneMeta {
    ZoneMeta {
        nsec3: Some(Nsec3Meta {
            iterations: 10,
            salt_len: 4,
            opt_out: false,
        }),
        ..ZoneMeta::default()
    }
}

fn probe_cfg_for(sb: &Sandbox, leaf: &str, hint_apexes: &[&str]) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name(&format!("www.{leaf}")),
        target_types: vec![RrType::A],
        time: NOW,
        retry: RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .filter(|z| hint_apexes.iter().any(|a| z.apex == name(a)))
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

/// An anchor-to-leaf delegation chain `depth` zones deep, with the leaf's
/// RRSIGs stripped so the fixer has real multi-iteration work to do.
fn broken_chain(depth: usize) -> (Sandbox, ProbeConfig) {
    let mut apexes = vec!["a.com".to_string()];
    for i in 1..depth {
        apexes.push(format!("z{i}.{}", apexes[i - 1]));
    }
    let specs: Vec<ZoneSpec> = apexes
        .iter()
        .map(|a| ZoneSpec::conventional(name(a)))
        .collect();
    let mut sb = build_sandbox(&specs, NOW, 0xC4A1);
    let leaf = apexes.last().unwrap();
    sb.testbed
        .mutate_zone_everywhere(&name(leaf), |z| z.strip_type(RrType::Rrsig));
    let hint_refs: Vec<&str> = apexes.iter().map(String::as_str).collect();
    let cfg = probe_cfg_for(&sb, leaf, &hint_refs);
    (sb, cfg)
}

/// One anchor with `n` sibling leaf zones — the wide-campaign shape where
/// steady-state revalidation dominates. Each leaf gets its own probe
/// config hinting only its two-chain.
fn sibling_campaign(n: usize) -> (Sandbox, Vec<ProbeConfig>) {
    let mut specs = vec![ZoneSpec::conventional(name("a.com"))];
    let leaves: Vec<String> = (0..n).map(|i| format!("leaf{i}.a.com")).collect();
    for leaf in &leaves {
        specs.push(ZoneSpec::conventional(name(leaf)));
    }
    let sb = build_sandbox(&specs, NOW, 0xCA3B);
    let cfgs = leaves
        .iter()
        .map(|leaf| probe_cfg_for(&sb, leaf, &["a.com", leaf]))
        .collect();
    (sb, cfgs)
}

fn bench(c: &mut Criterion) {
    let s1 = ReplicationRequest {
        meta: meta_nsec3(),
        intended: BTreeSet::from([ErrorCode::Nsec3IterationsNonzero]),
    };
    let s2 = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired, ErrorCode::DsMissingKeyForAlgorithm]),
    };
    c.bench_function("replicate_only_s1", |b| {
        b.iter(|| replicate(&s1, 1_000_000, 9).unwrap())
    });
    c.bench_function("replicate_grok_s1", |b| {
        b.iter(|| {
            let rep = replicate(&s1, 1_000_000, 9).unwrap();
            grok(&probe(&rep.sandbox.testbed, &rep.probe))
        })
    });
    c.bench_function("full_cycle_s1_nzic", |b| {
        b.iter(|| {
            let mut rep = replicate(&s1, 1_000_000, 9).unwrap();
            let cfg = rep.probe.clone();
            let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
            assert!(run.fixed);
            run
        })
    });
    c.bench_function("full_cycle_s2_multi_error", |b| {
        b.iter(|| {
            let mut rep = replicate(&s2, 1_000_000, 9).unwrap();
            let cfg = rep.probe.clone();
            let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
            assert!(run.fixed);
            run
        })
    });

    // Scratch-vs-incremental fixer convergence over a deep chain: each
    // iteration re-validates 8 zones; the memoized variant should re-probe
    // only the zones the previous fix touched.
    for (label, incremental) in [
        ("fixer_convergence_scratch_chain8", false),
        ("fixer_convergence_incremental_chain8", true),
    ] {
        c.bench_function(label, |b| {
            b.iter_batched(
                || broken_chain(8),
                |(mut sb, cfg)| {
                    let opts = FixerOptions {
                        incremental,
                        ..Default::default()
                    };
                    black_box(run_fixer(&mut sb, &cfg, &opts))
                },
                BatchSize::PerIteration,
            )
        });
    }

    // Steady-state campaign revalidation: N sibling zones, nothing changed
    // since the last pass. Scratch re-walks every chain; the memoized pass
    // answers from generation checks alone.
    for n in [8usize, 64, 256] {
        let (sb, cfgs) = sibling_campaign(n);
        c.bench_function(&format!("campaign_revalidate_scratch_{n}"), |b| {
            b.iter(|| {
                for cfg in &cfgs {
                    black_box(grok(&probe(&sb.testbed, cfg)));
                }
            })
        });
        let mut memos: Vec<GrokMemo> = (0..n).map(|_| GrokMemo::new()).collect();
        for (memo, cfg) in memos.iter_mut().zip(&cfgs) {
            memo.probe_grok(&sb.testbed, &sb.testbed, cfg);
        }
        c.bench_function(&format!("campaign_revalidate_incremental_{n}"), |b| {
            b.iter(|| {
                for (memo, cfg) in memos.iter_mut().zip(&cfgs) {
                    black_box(memo.probe_grok(&sb.testbed, &sb.testbed, cfg));
                }
            })
        });
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
