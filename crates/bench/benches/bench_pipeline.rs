//! The Table 6 pipeline, per snapshot: replicate → grok (GE) → DFixer →
//! grok (AE) for the S1 (NZIC-only) and a representative S2 scenario.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use ddx_dnsviz::{grok, probe, ErrorCode};
use ddx_fixer::{run_fixer, FixerOptions};
use ddx_replicator::{replicate, Nsec3Meta, ReplicationRequest, ZoneMeta};

fn meta_nsec3() -> ZoneMeta {
    ZoneMeta {
        nsec3: Some(Nsec3Meta {
            iterations: 10,
            salt_len: 4,
            opt_out: false,
        }),
        ..ZoneMeta::default()
    }
}

fn bench(c: &mut Criterion) {
    let s1 = ReplicationRequest {
        meta: meta_nsec3(),
        intended: BTreeSet::from([ErrorCode::Nsec3IterationsNonzero]),
    };
    let s2 = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired, ErrorCode::DsMissingKeyForAlgorithm]),
    };
    c.bench_function("replicate_only_s1", |b| {
        b.iter(|| replicate(&s1, 1_000_000, 9).unwrap())
    });
    c.bench_function("replicate_grok_s1", |b| {
        b.iter(|| {
            let rep = replicate(&s1, 1_000_000, 9).unwrap();
            grok(&probe(&rep.sandbox.testbed, &rep.probe))
        })
    });
    c.bench_function("full_cycle_s1_nzic", |b| {
        b.iter(|| {
            let mut rep = replicate(&s1, 1_000_000, 9).unwrap();
            let cfg = rep.probe.clone();
            let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
            assert!(run.fixed);
            run
        })
    });
    c.bench_function("full_cycle_s2_multi_error", |b| {
        b.iter(|| {
            let mut rep = replicate(&s2, 1_000_000, 9).unwrap();
            let cfg = rep.probe.clone();
            let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
            assert!(run.fixed);
            run
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
