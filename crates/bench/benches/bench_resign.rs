//! Re-signing benchmarks for the sign-once pipeline: repeated
//! `Sandbox::resign_zone` passes (the DFixer per-iteration workload),
//! cached vs cold zone signing, and the NSEC3 high-iteration case the
//! paper's NZIC class makes hot.

use criterion::{criterion_group, criterion_main, Criterion};

use ddx_dns::name;
use ddx_dnssec::{sign_zone, sign_zone_cached, Nsec3Config, SigCache};
use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

const NOW: u32 = 1_000_000;

fn three_level(nsec3: Option<Nsec3Config>) -> Sandbox {
    let mut leaf = ZoneSpec::conventional(name("chd.par.a.com"));
    leaf.nsec3 = nsec3;
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
            leaf,
        ],
        NOW,
        7,
    )
}

fn high_iteration_nsec3() -> Nsec3Config {
    Nsec3Config {
        iterations: 150,
        salt: vec![0xAA, 0xBB, 0xCC, 0xDD],
        ..Default::default()
    }
}

fn bench(c: &mut Criterion) {
    // The DFixer-iteration shape: the same zone re-signed over and over on
    // a long-lived sandbox whose RRSIG cache persists across passes.
    c.bench_function("resign_zone_warm", |b| {
        let mut sb = three_level(None);
        let apex = name("chd.par.a.com");
        sb.resign_zone(&apex, NOW + 10).unwrap();
        b.iter(|| sb.resign_zone(&apex, NOW + 10).unwrap())
    });
    c.bench_function("resign_zone_nsec3_high_iter_warm", |b| {
        let mut sb = three_level(Some(high_iteration_nsec3()));
        let apex = name("chd.par.a.com");
        sb.resign_zone(&apex, NOW + 10).unwrap();
        b.iter(|| sb.resign_zone(&apex, NOW + 10).unwrap())
    });

    // Cached vs cold whole-zone signing over identical input, isolating the
    // signer from the sandbox fan-out.
    let template = {
        let sb = three_level(None);
        let apex = name("chd.par.a.com");
        let id = sb.testbed.servers_hosting(&apex).remove(0);
        sb.testbed.server(&id).unwrap().zone(&apex).unwrap().clone()
    };
    let (ring, cfg) = {
        let sb = three_level(None);
        let z = sb.zone(&name("chd.par.a.com")).unwrap();
        (z.ring.clone(), z.signer_config.clone())
    };
    c.bench_function("sign_zone_cold", |b| {
        b.iter(|| {
            let mut zone = template.clone();
            sign_zone(&mut zone, &ring, &cfg, NOW + 10).unwrap();
            zone
        })
    });
    c.bench_function("sign_zone_cached_warm", |b| {
        let mut cache = SigCache::new();
        let mut warmup = template.clone();
        sign_zone_cached(&mut warmup, &ring, &cfg, NOW + 10, &mut cache).unwrap();
        b.iter(|| {
            let mut zone = template.clone();
            sign_zone_cached(&mut zone, &ring, &cfg, NOW + 10, &mut cache).unwrap();
            zone
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
