//! Ablation: DFixer's root-cause-ordered planning vs the naive per-error
//! baseline — cost per attempt and (printed once) fix success.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};

use ddx_dnsviz::ErrorCode;
use ddx_fixer::{run_fixer, run_naive, FixerOptions};
use ddx_replicator::{replicate, ReplicationRequest, ZoneMeta};

fn request() -> ReplicationRequest {
    ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsReferencesRevokedKey]),
    }
}

fn bench(c: &mut Criterion) {
    // Report outcome once so the ablation is visible in bench logs.
    {
        let req = request();
        let mut rep = replicate(&req, 1_000_000, 4).unwrap();
        let cfg = rep.probe.clone();
        let dfx = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
        let mut rep = replicate(&req, 1_000_000, 4).unwrap();
        let cfg = rep.probe.clone();
        let nv = run_naive(&mut rep.sandbox, &cfg, &FixerOptions::default());
        println!(
            "revoked-KSK scenario: DFixer fixed={} ({} iters), naive fixed={} ({} iters)",
            dfx.fixed,
            dfx.iterations.len(),
            nv.fixed,
            nv.iterations.len()
        );
    }
    c.bench_function("dfixer_revoked_ksk", |b| {
        b.iter(|| {
            let mut rep = replicate(&request(), 1_000_000, 4).unwrap();
            let cfg = rep.probe.clone();
            run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default())
        })
    });
    c.bench_function("naive_revoked_ksk", |b| {
        b.iter(|| {
            let mut rep = replicate(&request(), 1_000_000, 4).unwrap();
            let cfg = rep.probe.clone();
            run_naive(&mut rep.sandbox, &cfg, &FixerOptions::default())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
