//! Ablation: NSEC3 hashing cost as a function of the iteration count — the
//! quantitative argument behind RFC 9276 (and the paper's NZIC finding) —
//! plus NSEC vs NSEC3 chain construction cost over a sandbox zone.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use ddx_dns::name;
use ddx_dnssec::{build_nsec3_chain, build_nsec_chain, nsec3_hash, Nsec3Config};
use ddx_server::{build_sandbox, ZoneSpec};

fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("nsec3_hash_iterations");
    let n = name("www.inv-chd.par.a.com");
    for iterations in [0u16, 10, 50, 150] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iters| b.iter(|| nsec3_hash(black_box(&n), b"salt", iters)),
        );
    }
    group.finish();
}

fn bench_chains(c: &mut Criterion) {
    let sb = build_sandbox(&[ZoneSpec::conventional(name("a.com"))], 1_000_000, 3);
    let base = sb
        .testbed
        .server(&sb.zones[0].servers[0])
        .unwrap()
        .zone(&name("a.com"))
        .unwrap()
        .clone();
    let plain = {
        let mut z = base.clone();
        z.strip_dnssec();
        z
    };
    c.bench_function("build_nsec_chain", |b| {
        b.iter(|| {
            let mut z = plain.clone();
            build_nsec_chain(&mut z);
            z
        })
    });
    let mut group = c.benchmark_group("build_nsec3_chain");
    for iterations in [0u16, 150] {
        group.bench_with_input(
            BenchmarkId::from_parameter(iterations),
            &iterations,
            |b, &iters| {
                b.iter(|| {
                    let mut z = plain.clone();
                    build_nsec3_chain(
                        &mut z,
                        &Nsec3Config {
                            iterations: iters,
                            ..Default::default()
                        },
                    );
                    z
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hash, bench_chains);
criterion_main!(benches);
