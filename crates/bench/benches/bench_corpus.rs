//! Corpus generation and analysis throughput (Tables 1-5 inputs).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ddx_dataset::{analysis, generate, CorpusConfig};

fn bench(c: &mut Criterion) {
    c.bench_function("generate_corpus_scale_0.005", |b| {
        b.iter(|| {
            generate(&CorpusConfig {
                scale: 0.005,
                seed: 7,
            })
        })
    });
    let corpus = generate(&CorpusConfig {
        scale: 0.01,
        seed: 7,
    });
    c.bench_function("analysis_prevalence", |b| {
        b.iter(|| analysis::prevalence(black_box(&corpus)))
    });
    c.bench_function("analysis_transitions", |b| {
        b.iter(|| analysis::transitions(black_box(&corpus)))
    });
    c.bench_function("analysis_resolution_times", |b| {
        b.iter(|| analysis::resolution_times(black_box(&corpus)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
