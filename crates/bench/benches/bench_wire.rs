//! Wire-codec throughput: encoding/decoding a realistic signed DNSKEY
//! response (the largest message class the probe handles).

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ddx_dns::{name, wire, Message, RData, Record, RrType};
use ddx_dnssec::{sign_rrset, Algorithm, KeyPair, KeyRole, SignOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dnskey_response() -> Message {
    let mut rng = StdRng::seed_from_u64(1);
    let zone = name("inv-chd.par.a.com");
    let q = Message::query(1, zone.clone(), RrType::Dnskey);
    let mut resp = q.response();
    let mut records = Vec::new();
    for role in [KeyRole::Ksk, KeyRole::Zsk] {
        let k = KeyPair::generate(&mut rng, zone.clone(), Algorithm::RsaSha256, 2048, role, 0);
        records.push(Record::new(
            zone.clone(),
            3600,
            RData::Dnskey(k.dnskey.clone()),
        ));
        if role == KeyRole::Ksk {
            let set = ddx_dns::RRset::from_records(&records).unwrap();
            let sig = sign_rrset(
                &set,
                &k,
                SignOptions {
                    inception: 0,
                    expiration: 10_000_000,
                },
            );
            resp.answers
                .push(Record::new(zone.clone(), 3600, RData::Rrsig(sig)));
        }
    }
    resp.answers.extend(records);
    resp
}

fn bench(c: &mut Criterion) {
    let msg = dnskey_response();
    let bytes = wire::encode(&msg);
    c.bench_function("wire_encode_dnskey_response", |b| {
        b.iter(|| wire::encode(black_box(&msg)))
    });
    c.bench_function("wire_decode_dnskey_response", |b| {
        b.iter(|| wire::decode(black_box(&bytes)).unwrap())
    });
    c.bench_function("wire_round_trip", |b| {
        b.iter(|| wire::decode(&wire::encode(black_box(&msg))).unwrap())
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
