//! Wire-codec throughput: encoding/decoding a realistic signed DNSKEY
//! response (the largest message class the probe handles), plus the
//! zero-copy [`MessageView`] parse path against the owned decoder over a
//! probe-walk response mix — the BENCH_pr7.json protocol.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

use ddx_dns::{
    name, wire, Edns, Message, MessageView, Nsec, RData, Record, RrType, Rrsig, TypeBitmap,
};
use ddx_dnssec::{sign_rrset, Algorithm, KeyPair, KeyRole, SignOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dnskey_response() -> Message {
    let mut rng = StdRng::seed_from_u64(1);
    let zone = name("inv-chd.par.a.com");
    let q = Message::query(1, zone.clone(), RrType::Dnskey);
    let mut resp = q.response();
    let mut records = Vec::new();
    for role in [KeyRole::Ksk, KeyRole::Zsk] {
        let k = KeyPair::generate(&mut rng, zone.clone(), Algorithm::RsaSha256, 2048, role, 0);
        records.push(Record::new(
            zone.clone(),
            3600,
            RData::Dnskey(k.dnskey.clone()),
        ));
        if role == KeyRole::Ksk {
            let set = ddx_dns::RRset::from_records(&records).unwrap();
            let sig = sign_rrset(
                &set,
                &k,
                SignOptions {
                    inception: 0,
                    expiration: 10_000_000,
                },
            );
            resp.answers
                .push(Record::new(zone.clone(), 3600, RData::Rrsig(sig)));
        }
    }
    resp.answers.extend(records);
    resp
}

/// A signed positive answer: A + covering RRSIG, EDNS with DO.
fn signed_a_response(id: u16) -> Message {
    let owner = name("www.inv-chd.par.a.com");
    let mut resp = Message::query(id, owner.clone(), RrType::A).response();
    resp.flags.aa = true;
    resp.answers.push(Record::new(
        owner.clone(),
        300,
        RData::A([192, 0, 2, 7].into()),
    ));
    resp.answers.push(Record::new(
        owner,
        300,
        RData::Rrsig(Rrsig {
            type_covered: RrType::A,
            algorithm: 13,
            labels: 5,
            original_ttl: 300,
            expiration: 10_000_000,
            inception: 0,
            key_tag: 4242,
            signer_name: name("inv-chd.par.a.com"),
            signature: vec![7; 64],
        }),
    ));
    resp.edns = Some(Edns {
        udp_size: 1232,
        dnssec_ok: true,
    });
    resp
}

/// An authenticated denial: NSEC + RRSIG in the authority section.
fn nsec_denial_response(id: u16) -> Message {
    let zone = name("inv-chd.par.a.com");
    let mut resp = Message::query(id, name("nope.inv-chd.par.a.com"), RrType::Txt).response();
    resp.flags.aa = true;
    resp.rcode = ddx_dns::Rcode::NxDomain;
    resp.authorities.push(Record::new(
        zone.clone(),
        300,
        RData::Nsec(Nsec {
            next_name: name("www.inv-chd.par.a.com"),
            type_bitmap: TypeBitmap::from_types([RrType::Soa, RrType::Ns, RrType::Dnskey]),
        }),
    ));
    resp.authorities.push(Record::new(
        zone.clone(),
        300,
        RData::Rrsig(Rrsig {
            type_covered: RrType::Nsec,
            algorithm: 13,
            labels: 4,
            original_ttl: 300,
            expiration: 10_000_000,
            inception: 0,
            key_tag: 4242,
            signer_name: zone,
            signature: vec![9; 64],
        }),
    ));
    resp.edns = Some(Edns {
        udp_size: 1232,
        dnssec_ok: true,
    });
    resp
}

/// The wire images a DNSViz-style probe walk produces: apex DNSKEY (large),
/// signed positive answers, and NSEC denials.
fn probe_walk_mix() -> Vec<Vec<u8>> {
    let mut mix = vec![wire::encode(&dnskey_response())];
    for id in 2..6 {
        mix.push(wire::encode(&signed_a_response(id)));
    }
    for id in 6..9 {
        mix.push(wire::encode(&nsec_denial_response(id)));
    }
    mix
}

fn bench(c: &mut Criterion) {
    let msg = dnskey_response();
    let bytes = wire::encode(&msg);
    c.bench_function("wire_encode_dnskey_response", |b| {
        b.iter(|| wire::encode(black_box(&msg)))
    });
    c.bench_function("wire_decode_dnskey_response", |b| {
        b.iter(|| wire::decode(black_box(&bytes)).unwrap())
    });
    c.bench_function("wire_round_trip", |b| {
        b.iter(|| wire::decode(&wire::encode(black_box(&msg))).unwrap())
    });

    // View vs owned on the same single large message.
    c.bench_function("view_parse_dnskey_response", |b| {
        b.iter(|| MessageView::parse(black_box(&bytes)).unwrap())
    });

    // The BENCH_pr7 headline rows: decode throughput over the probe-walk
    // response mix, owned materialization vs zero-copy validation.
    let mix = probe_walk_mix();
    c.bench_function("owned_decode_probe_mix", |b| {
        b.iter(|| {
            for bytes in &mix {
                black_box(wire::decode(black_box(bytes)).unwrap());
            }
        })
    });
    c.bench_function("view_parse_probe_mix", |b| {
        b.iter(|| {
            for bytes in &mix {
                black_box(MessageView::parse(black_box(bytes)).unwrap());
            }
        })
    });

    // The server request-path read set: parse, then pull exactly what
    // AnswerKey::from_view touches (question, rd flag, EDNS).
    c.bench_function("view_request_path_probe_mix", |b| {
        b.iter(|| {
            for bytes in &mix {
                let view = MessageView::parse(black_box(bytes)).unwrap();
                let q = view.question().unwrap();
                black_box((
                    q.qname().label_count(),
                    q.qtype(),
                    view.flags().rd,
                    view.edns(),
                ));
            }
        })
    });

    // The bridge must price like the owned decode it wraps.
    c.bench_function("view_to_owned_probe_mix", |b| {
        b.iter(|| {
            for bytes in &mix {
                black_box(MessageView::parse(black_box(bytes)).unwrap().to_owned());
            }
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
