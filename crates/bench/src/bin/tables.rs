//! Regenerates every table and figure of the paper's evaluation from the
//! synthetic corpus and the live replicate→fix pipeline.
//!
//! ```text
//! tables [--scale S] [--sample N] [--seed K] [--only <table1|fig1|…|table7|fig8|ext|llm>] [--full]
//!        [--metrics-out metrics.json]
//! ```
//!
//! Defaults: scale 0.01 (1% of the paper's dataset), 1,500 pipeline
//! snapshots. Paper reference values are printed alongside for comparison.

use std::collections::BTreeSet;

use ddx::prelude::*;
use ddx::{EvalConfig, EvalSummary};
use ddx_dataset::{analysis, params, tranco};

struct Args {
    scale: f64,
    sample: usize,
    seed: u64,
    only: Option<String>,
    export_snapshots: Option<(usize, String)>,
    csv_dir: Option<String>,
    workers: usize,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        scale: 0.01,
        sample: 1_500,
        seed: 20_200_311,
        only: None,
        export_snapshots: None,
        csv_dir: None,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.scale),
            "--sample" => {
                args.sample = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.sample)
            }
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(args.seed),
            "--only" => args.only = it.next(),
            "--csv" => args.csv_dir = it.next(),
            "--workers" => {
                args.workers = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(args.workers)
            }
            "--metrics-out" => args.metrics_out = it.next(),
            "--export-snapshots" => {
                let n = it.next().and_then(|v| v.parse().ok()).unwrap_or(10);
                let dir = it.next().unwrap_or_else(|| "snapshots".into());
                args.export_snapshots = Some((n, dir));
            }
            "--full" => {
                args.scale = 1.0;
                args.sample = usize::MAX;
            }
            other => eprintln!("ignoring unknown argument {other}"),
        }
    }
    args
}

fn want(args: &Args, key: &str) -> bool {
    args.only.as_deref().map(|o| o == key).unwrap_or(true)
}

fn heading(title: &str) {
    println!("\n================================================================");
    println!("{title}");
    println!("================================================================");
}

fn main() {
    let args = parse_args();
    println!(
        "# ddx tables — scale {} (paper = 1.0), pipeline sample {}, seed {}",
        args.scale,
        if args.sample == usize::MAX {
            "all".to_string()
        } else {
            args.sample.to_string()
        },
        args.seed
    );
    let corpus = generate(&CorpusConfig {
        scale: args.scale,
        seed: args.seed,
    });

    if let Some((n, dir)) = &args.export_snapshots {
        export_snapshots(&corpus, *n, dir);
        if args.only.is_none() {
            return;
        }
    }

    if want(&args, "table1") {
        table1(&corpus, args.scale);
    }
    if want(&args, "fig1") {
        fig1(args.scale, args.seed);
    }
    if want(&args, "fig2") {
        fig2(&corpus);
    }
    if want(&args, "table2") {
        table2(&corpus);
    }
    if want(&args, "table3") {
        table3(&corpus);
    }
    if want(&args, "fig3") {
        fig3(&corpus);
    }
    if want(&args, "table4") {
        table4(&corpus);
    }
    if want(&args, "fig4") {
        fig4(&corpus);
    }
    if want(&args, "fig5") {
        fig5(&corpus);
    }
    if want(&args, "table5") {
        table5(&corpus);
    }
    if want(&args, "table6") || want(&args, "table7") {
        let summary = run_pipeline(&corpus, &args);
        if want(&args, "table6") {
            table6(&summary);
        }
        if want(&args, "table7") {
            table7(&summary);
        }
    }
    if let Some(dir) = &args.csv_dir {
        export_csv(&corpus, dir, args.scale, args.seed);
    }
    if want(&args, "fig8") {
        fig8();
    }
    if want(&args, "ext") {
        extensibility();
    }
    if want(&args, "llm") {
        llm_baseline();
    }
    if let Some(path) = &args.metrics_out {
        let snap = ddx_obs::snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => {
                heading(&format!("Run metrics (written to {path})"));
                print!("{}", snap.render_report());
            }
            Err(e) => eprintln!("warning: could not write metrics to {path}: {e}"),
        }
    }
}

/// Writes N erroneous snapshots as JSON files consumable by
/// `zreplicator --snapshot-file` (the Fig 7 interchange format).
fn export_snapshots(corpus: &Corpus, n: usize, dir: &str) {
    std::fs::create_dir_all(dir).expect("create export dir");
    for (i, snapshot) in corpus.erroneous_snapshots().take(n).enumerate() {
        let path = format!("{dir}/snapshot_{i:05}.json");
        std::fs::write(&path, serde_json::to_string_pretty(snapshot).unwrap())
            .expect("write snapshot");
        println!("wrote {path}");
    }
}

/// Writes the data series behind every figure as CSV, ready for plotting.
fn export_csv(corpus: &Corpus, dir: &str, scale: f64, seed: u64) {
    std::fs::create_dir_all(dir).expect("create csv dir");
    let write = |file: &str, content: String| {
        let path = format!("{dir}/{file}");
        std::fs::write(&path, content).expect("write csv");
        println!("wrote {path}");
    };
    // Fig 1.
    let mut out = String::from("bin,pct_in_dataset,pct_signed_in_dataset,pct_misconfigured\n");
    for b in tranco::tranco_bins(scale, seed) {
        out.push_str(&format!(
            "{},{:.3},{:.3},{:.3}\n",
            b.bin + 1,
            100.0 * b.dataset_share(),
            100.0 * b.signed_dataset_share(),
            100.0 * b.misconfigured_share()
        ));
    }
    write("fig1_tranco.csv", out);
    // Fig 3.
    let prev = analysis::prevalence(corpus);
    let mut out = String::from("category,pct_of_snapshots\n");
    for (cat, share) in analysis::category_shares(&prev) {
        out.push_str(&format!("{},{share:.4}\n", cat.label()));
    }
    write("fig3_categories.csv", out);
    // Fig 4.
    let rt = analysis::resolution_times(corpus);
    let mut out =
        String::from("marker,subcategory,severity,instances,p20_days,p50_days,p80_days\n");
    for r in &rt.rows {
        out.push_str(&format!(
            "{},{},{},{},{:.3},{:.3},{:.3}\n",
            r.marker,
            r.subcategory.label().replace(',', ";"),
            if r.critical {
                "critical"
            } else {
                "non-critical"
            },
            r.instances,
            r.p20_hours / 24.0,
            r.p50_hours / 24.0,
            r.p80_hours / 24.0
        ));
    }
    write("fig4_resolution_times.csv", out);
    // Fig 5.
    let cdf = analysis::gap_cdf(corpus);
    let mut out = String::from("hours,cdf\n");
    for h in [
        0.5, 1.0, 2.0, 6.0, 12.0, 24.0, 48.0, 72.0, 168.0, 336.0, 720.0, 2160.0, 4320.0,
    ] {
        out.push_str(&format!("{h},{:.4}\n", cdf.cdf(h)));
    }
    write("fig5_gap_cdf.csv", out);
    // Fig 2 matrix.
    let fl = analysis::first_last(corpus);
    let mut out = String::from("first,last,count\n");
    for ((f, l), c) in &fl.counts {
        out.push_str(&format!("{},{},{c}\n", f.label(), l.label()));
    }
    write("fig2_first_last.csv", out);
}

fn table1(corpus: &Corpus, scale: f64) {
    heading("Table 1 — Overview of the dataset (paper values at scale 1.0)");
    let rows = analysis::table1(corpus);
    println!(
        "{:<6} {:>10} {:>9} {:>9} {:>8} {:>8}",
        "Level", "snapshots", "domains", "multi", "CD", "SD"
    );
    for r in &rows {
        println!(
            "{:<6} {:>10} {:>9} {:>9} {:>8} {:>8}",
            r.level, r.snapshots, r.domains, r.multi, r.cd, r.sd
        );
    }
    println!(
        "paper:  SLD+ snapshots={} domains={} multi={} CD={} SD={} (× scale {scale})",
        params::table1::SLD_SNAPSHOTS,
        params::table1::SLD_DOMAINS,
        params::table1::SLD_MULTI,
        params::table1::SLD_CD,
        params::table1::SLD_SD,
    );
}

fn fig1(scale: f64, seed: u64) {
    heading("Figure 1 — Tranco 1M coverage per 100K rank bin");
    let bins = tranco::tranco_bins(scale, seed);
    println!(
        "{:>4} {:>12} {:>14} {:>16}",
        "bin", "% in DNSViz", "% signed seen", "% misconfigured"
    );
    for b in &bins {
        println!(
            "{:>4} {:>11.1}% {:>13.1}% {:>15.1}%",
            b.bin + 1,
            100.0 * b.dataset_share(),
            100.0 * b.signed_dataset_share(),
            100.0 * b.misconfigured_share()
        );
    }
    println!("paper: top bin ≈20% covered; signed line >30% in every bin; misconfiguration rarer among popular domains");
}

fn fig2(corpus: &Corpus) {
    heading("Figure 2 — CD domains: first → last snapshot status");
    let fl = analysis::first_last(corpus);
    let states = [
        SnapshotStatus::Sv,
        SnapshotStatus::Svm,
        SnapshotStatus::Sb,
        SnapshotStatus::Is,
    ];
    print!("{:>6}", "f\\l");
    for s in states {
        print!("{:>8}", s.label());
    }
    println!();
    for f in states {
        print!("{:>6}", f.label());
        for l in states {
            print!("{:>8}", fl.counts.get(&(f, l)).copied().unwrap_or(0));
        }
        println!();
    }
    println!(
        "sb recovered (→sv/svm): {:.0}%   (paper: 67%)",
        100.0 * fl.sb_recovered_share()
    );
    println!(
        "is newly signed:        {:.0}%   (paper: 62%)",
        100.0 * fl.newly_signed_share()
    );
}

fn table2(corpus: &Corpus) {
    heading("Table 2 — Causes of negative transitions from sv");
    let nt = analysis::negative_transitions(corpus);
    for (label, b, paper) in [
        ("sv→sb", &nt.sv_to_sb, (6.7, 45.2, 30.3)),
        ("sv→is", &nt.sv_to_is, (7.0, 30.0, 18.0)),
    ] {
        println!(
            "{label}: total={}  NS {:.1}% (paper {:.1}%)  Key {:.1}% (paper {:.1}%)  Algo {:.1}% (paper {:.1}%)",
            b.total,
            100.0 * b.ns_update as f64 / b.total.max(1) as f64,
            paper.0,
            100.0 * b.key_rollover as f64 / b.total.max(1) as f64,
            paper.1,
            100.0 * b.algo_rollover as f64 / b.total.max(1) as f64,
            paper.2,
        );
    }
}

fn table3(corpus: &Corpus) {
    heading("Table 3 — Prevalence of DNSSEC error types (SLD+)");
    let prev = analysis::prevalence(corpus);
    println!(
        "{:<36} {:>10} {:>7} {:>9} {:>7}   paper snap%",
        "Subcategory", "snapshots", "%", "domains", "%"
    );
    for r in &prev.rows {
        let paper_pct = 100.0 * params::subcategory_snapshots(r.subcategory) as f64
            / params::table1::SLD_SNAPSHOTS as f64;
        println!(
            "{:<36} {:>10} {:>6.2}% {:>9} {:>6.2}%   {:>6.2}%",
            r.subcategory.label(),
            r.snapshots,
            r.snapshot_pct,
            r.domains,
            r.domain_pct,
            paper_pct
        );
    }
    println!(
        "w/ at least one error: {} snapshots ({:.1}%), {} domains ({:.1}%)   (paper: 39.7% / 25.6%)",
        prev.erroneous_snapshots,
        100.0 * prev.erroneous_snapshots as f64 / prev.total_snapshots as f64,
        prev.erroneous_domains,
        100.0 * prev.erroneous_domains as f64 / prev.total_domains as f64,
    );
}

fn fig3(corpus: &Corpus) {
    heading("Figure 3 — Error share per parent category (% of snapshots)");
    let prev = analysis::prevalence(corpus);
    for (cat, share) in analysis::category_shares(&prev) {
        let bar = "#".repeat((share * 1.5).round() as usize);
        println!("{:<12} {:>6.2}% {bar}", cat.label(), share);
    }
}

fn table4(corpus: &Corpus) {
    heading("Table 4 — Transition adjacency matrix (count / median hours)");
    let tm = analysis::transitions(corpus);
    let labels = ["sv", "svm", "sb", "is"];
    let print_matrix = |counts: &[[u64; 4]; 4], medians: &[[f64; 4]; 4]| {
        print!("{:>6}", "f\\t");
        for l in labels {
            print!("{:>16}", l);
        }
        println!();
        for i in 0..4 {
            print!("{:>6}", labels[i]);
            for j in 0..4 {
                if i == j {
                    print!("{:>16}", "-");
                } else {
                    print!("{:>9}/{:>5.1}h", counts[i][j], medians[i][j]);
                }
            }
            println!();
        }
    };
    print_matrix(&tm.counts, &tm.median_hours);
    println!("paper:");
    print_matrix(&params::TRANSITION_COUNTS, &params::TRANSITION_MEDIAN_HOURS);
}

fn fig4(corpus: &Corpus) {
    heading("Figure 4 — Resolution times for marked error categories");
    let rt = analysis::resolution_times(corpus);
    println!(
        "{:<4} {:<36} {:<9} {:>6} {:>9} {:>9} {:>9}",
        "idx", "subcategory", "severity", "n", "p20(d)", "p50(d)", "p80(d)"
    );
    for r in &rt.rows {
        println!(
            "{:<4} {:<36} {:<9} {:>6} {:>9.2} {:>9.2} {:>9.2}",
            r.marker,
            r.subcategory.label(),
            if r.critical { "critical" } else { "non-crit" },
            r.instances,
            r.p20_hours / 24.0,
            r.p50_hours / 24.0,
            r.p80_hours / 24.0
        );
    }
    println!(
        "time to deploy DNSSEC: median {:.1} days over {} instances (paper: >1 day)",
        rt.deploy_median_hours / 24.0,
        rt.deploy_instances
    );
}

fn fig5(corpus: &Corpus) {
    heading("Figure 5 — CDF of per-domain median inter-snapshot gap");
    let cdf = analysis::gap_cdf(corpus);
    for hours in [1.0, 6.0, 12.0, 24.0, 72.0, 168.0, 720.0, 4320.0] {
        println!("≤ {:>6.0}h: {:>5.1}%", hours, 100.0 * cdf.cdf(hours));
    }
    println!(
        "share under one day: {:.0}%   (paper: 65%)",
        100.0 * cdf.share_under_day
    );
}

fn table5(corpus: &Corpus) {
    heading("Table 5 — Domains never resolving per state");
    let rows = analysis::unresolved(corpus);
    let paper = [
        params::table5::SB_UNRESOLVED,
        params::table5::SVM_UNRESOLVED,
        params::table5::IS_UNRESOLVED,
    ];
    for (r, paper_share) in rows.iter().zip(paper) {
        println!(
            "{:<4} domains={:>7} unresolved={:>7} ({:>5.1}%)   paper {:>5.1}%",
            r.state.label(),
            r.domains,
            r.unresolved,
            100.0 * r.share(),
            100.0 * paper_share
        );
    }
}

fn run_pipeline(corpus: &Corpus, args: &Args) -> EvalSummary {
    heading("Running replicate→fix pipeline (Tables 6 & 7)…");
    let cfg = EvalConfig {
        max_snapshots: args.sample,
        seed: args.seed,
        ..Default::default()
    };
    let start = std::time::Instant::now();
    let summary = ddx::evaluate_corpus_parallel(corpus, &cfg, args.workers);
    println!(
        "evaluated {} snapshots in {:.1}s ({} workers)",
        summary.total().snapshots,
        start.elapsed().as_secs_f64(),
        args.workers
    );
    summary
}

fn table6(summary: &EvalSummary) {
    heading("Table 6 — ZReplicator replication rate & DFixer fix rate");
    println!(
        "{:<16} {:>10} {:>10} {:>12} {:>8} {:>8}",
        "Dataset", "snapshots", "GE≠∅", "IE⊆GE&IE≠∅", "RR", "FR"
    );
    let total = summary.total();
    for (row, paper_rr, paper_fr) in [
        (&summary.s1, 98.81, 100.0),
        (&summary.s2, 78.71, 99.99),
        (&total, 90.11, 99.99),
    ] {
        println!(
            "{:<16} {:>10} {:>10} {:>12} {:>7.2}% {:>7.2}%   (paper {paper_rr:.2}% / {paper_fr:.2}%)",
            row.label,
            row.snapshots,
            row.ge_nonempty,
            row.replicated,
            100.0 * row.rr(),
            100.0 * row.fr()
        );
    }
    println!(
        "max DFixer iterations: {} (paper: ≤4)",
        summary.max_iterations
    );
}

fn table7(summary: &EvalSummary) {
    heading("Table 7 — DFixer instructions per iteration (S2 subset)");
    let mut col_totals = [0u64; 4];
    for (_, cols) in &summary.instruction_histogram {
        for (i, total) in col_totals.iter_mut().enumerate().take(4) {
            *total += cols[i];
        }
    }
    println!(
        "{:<44} {:>14} {:>14} {:>14} {:>14}",
        "Instruction", "1st iter", "2nd iter", "3rd iter", "4th iter"
    );
    let mut rows: Vec<_> = summary.instruction_histogram.clone();
    rows.sort_by_key(|(_, cols)| std::cmp::Reverse(cols[0]));
    for (kind, cols) in rows {
        print!("{:<44}", kind.label());
        for i in 0..4 {
            if cols[i] == 0 {
                print!(" {:>14}", "-");
            } else {
                print!(
                    " {:>6} ({:>4.1}%)",
                    cols[i],
                    100.0 * cols[i] as f64 / col_totals[i].max(1) as f64
                );
            }
        }
        println!();
    }
    println!(
        "paper: Sign-the-zone 41.7% of 1st-iteration instructions, Remove-incorrect-DS 30.9%, …"
    );
}

fn fig8() {
    heading("Figure 8 — Sample remediation workflow (revoked KSK + linked DS)");
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsReferencesRevokedKey]),
    };
    let rep = replicate(&request, 1_000_000, 0xF18).expect("replicates");
    let (report, resolution, commands) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
    println!(
        "status: {}; root cause: {:?}",
        report.status, resolution.addressed
    );
    for (i, instr) in resolution.plan.iter().enumerate() {
        println!("  ({}) {}", i + 1, instr.describe());
    }
    println!("-- BIND commands --");
    for c in &commands {
        println!("  {c}");
    }
}

fn extensibility() {
    heading("§5.6 — Extensibility: the same plan rendered per implementation");
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let rep = replicate(&request, 1_000_000, 0x5E6).expect("replicates");
    for flavor in ServerFlavor::ALL {
        let (_, _, commands) = suggest(&rep.sandbox, &rep.probe, flavor);
        println!("\n[{flavor:?}]");
        for c in commands.iter().take(4) {
            println!("  {c}");
        }
    }
}

fn llm_baseline() {
    heading("Appendix A.2 — DFixer vs the naive per-error baseline");
    let scenarios: Vec<(&str, Vec<ErrorCode>, bool)> = vec![
        (
            "extraneous DS (A.2 test zone)",
            vec![ErrorCode::DsMissingKeyForAlgorithm],
            false,
        ),
        (
            "revoked sole KSK (Fig 8)",
            vec![ErrorCode::DsReferencesRevokedKey],
            false,
        ),
        ("expired RRSIG", vec![ErrorCode::RrsigExpired], false),
        (
            "NZIC + extraneous DS",
            vec![
                ErrorCode::Nsec3IterationsNonzero,
                ErrorCode::DsMissingKeyForAlgorithm,
            ],
            true,
        ),
        (
            "broken NSEC3 chain",
            vec![ErrorCode::Nsec3CoverageBroken],
            true,
        ),
    ];
    println!(
        "{:<32} {:>8} {:>8} {:>10} {:>10}",
        "scenario", "DFixer", "naive", "DFx iters", "nv iters"
    );
    for (label, codes, nsec3) in scenarios {
        let mut meta = ZoneMeta::default();
        if nsec3 {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        let request = ReplicationRequest {
            meta,
            intended: codes.iter().copied().collect(),
        };
        let mut rep_a = replicate(&request, 1_000_000, 0x11A).expect("replicates");
        let cfg_a = rep_a.probe.clone();
        let run_a = run_fixer(&mut rep_a.sandbox, &cfg_a, &FixerOptions::default());
        let mut rep_b = replicate(&request, 1_000_000, 0x11A).expect("replicates");
        let cfg_b = rep_b.probe.clone();
        let run_b = run_naive(&mut rep_b.sandbox, &cfg_b, &FixerOptions::default());
        println!(
            "{:<32} {:>8} {:>8} {:>10} {:>10}",
            label,
            if run_a.fixed { "FIXED" } else { "FAIL" },
            if run_b.fixed { "fixed" } else { "FAIL" },
            run_a.iterations.len(),
            run_b.iterations.len()
        );
    }
}
