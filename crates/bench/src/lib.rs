//! Benchmark crate: see `benches/` and the `tables` binary.
