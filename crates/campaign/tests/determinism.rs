//! Campaign determinism: shard bytes are a pure function of
//! `(seed, shard index, per-shard zone count, model knobs)` — across
//! repeat runs, across worker counts, and across `--resume` completions
//! of a killed run.

use std::fs;
use std::path::{Path, PathBuf};

use ddx_campaign::{aggregate_dir, run_campaign, shard_path, CampaignConfig};

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddx-campaign-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn config(out_dir: PathBuf, workers: usize) -> CampaignConfig {
    CampaignConfig {
        seed: 0xCA4411,
        zones: 48,
        shards: 4,
        workers,
        out_dir,
        ..CampaignConfig::default()
    }
}

fn shard_bytes(dir: &Path, shards: u32) -> Vec<Vec<u8>> {
    (0..shards)
        .map(|s| fs::read(shard_path(dir, s)).expect("shard exists"))
        .collect()
}

#[test]
fn byte_identical_across_runs_and_worker_counts() {
    let dirs = [test_dir("det-w1a"), test_dir("det-w8"), test_dir("det-w1b")];
    for (dir, workers) in dirs.iter().zip([1usize, 8, 1]) {
        let cfg = config(dir.clone(), workers);
        let outcome = run_campaign(&cfg).expect("campaign runs");
        assert_eq!(outcome.shards_written, 4);
        assert_eq!(outcome.shards_resumed, 0);
        assert_eq!(outcome.zones_evaluated, 48);
    }
    let reference = shard_bytes(&dirs[0], 4);
    for dir in &dirs[1..] {
        assert_eq!(
            shard_bytes(dir, 4),
            reference,
            "shard bytes differ between worker counts / repeat runs"
        );
    }
    // Aggregates are byte-stable too.
    let summaries: Vec<String> = dirs
        .iter()
        .map(|d| aggregate_dir(d).expect("aggregates").to_json())
        .collect();
    assert_eq!(summaries[0], summaries[1]);
    assert_eq!(summaries[0], summaries[2]);
    for dir in &dirs {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn resume_completes_a_killed_run_byte_identically() {
    let dir = test_dir("resume");
    let cfg = config(dir.clone(), 4);
    run_campaign(&cfg).expect("initial campaign runs");
    let reference = shard_bytes(&dir, 4);
    let reference_summary = aggregate_dir(&dir).expect("aggregates").to_json();

    // Simulate a killed run: one shard missing entirely, one truncated
    // mid-file (invalid footer → must be regenerated, not trusted).
    fs::remove_file(shard_path(&dir, 2)).unwrap();
    let shard1 = shard_path(&dir, 1);
    let bytes = fs::read(&shard1).unwrap();
    fs::write(&shard1, &bytes[..bytes.len() / 2]).unwrap();

    let resumed_cfg = CampaignConfig {
        resume: true,
        ..config(dir.clone(), 2)
    };
    let outcome = run_campaign(&resumed_cfg).expect("resume runs");
    assert_eq!(outcome.shards_resumed, 2, "two shards were intact");
    assert_eq!(outcome.shards_written, 2, "two shards were regenerated");

    assert_eq!(shard_bytes(&dir, 4), reference);
    assert_eq!(
        aggregate_dir(&dir).expect("aggregates").to_json(),
        reference_summary,
        "aggregate after resume differs from the uninterrupted run"
    );

    // Resuming a complete campaign evaluates nothing.
    let outcome = run_campaign(&resumed_cfg).expect("no-op resume runs");
    assert_eq!(outcome.shards_resumed, 4);
    assert_eq!(outcome.zones_evaluated, 0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn tables_regenerate_within_tolerance_at_smoke_scale() {
    let dir = test_dir("tolerance");
    let cfg = CampaignConfig {
        seed: 0x7AB1E5,
        zones: 600,
        shards: 6,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        out_dir: dir.clone(),
        ..CampaignConfig::default()
    };
    run_campaign(&cfg).expect("campaign runs");
    let summary = aggregate_dir(&dir).expect("aggregates");
    assert_eq!(summary.zones, 600);
    assert_eq!(summary.campaign_seed, 0x7AB1E5);
    assert_eq!(summary.shards, 6);

    // The populations all materialized and the fixer actually fixed.
    assert!(
        summary.benign_zones > 500,
        "hostile population swallowed the campaign"
    );
    let fixed = summary.outcomes.get("fixed").copied().unwrap_or(0);
    assert!(fixed > 100, "only {fixed} zones fixed at smoke scale");

    let violations = summary.check_tolerances();
    assert!(
        violations.is_empty(),
        "campaign deviates from the paper's distributions:\n{}",
        violations.join("\n")
    );

    // The rendered tables carry markdown rows for the CI step summary.
    let markdown = summary.render_markdown();
    assert!(markdown.contains("| s1 (NZIC-only) |"));
    assert!(markdown.contains("| Subcategory (Table 3) |"));
    assert!(markdown.contains("| Instruction (Table 7) |"));
    let _ = fs::remove_dir_all(&dir);
}
