//! Streaming invariant: campaign memory does not scale with campaign
//! size. Peak RSS is read from `/proc/self/status` (`VmHWM`), so these
//! tests self-skip off Linux.
//!
//! The method avoids sampling races: `VmHWM` is the kernel's own
//! high-water mark. Run a small campaign, note the peak, run a campaign
//! several times larger, and require the peak to have grown by at most a
//! constant — if zones (sandboxes are ~MB-scale signed zone sets) were
//! accumulated instead of streamed, the larger run would blow through
//! the bound immediately.

use std::fs;
use std::path::PathBuf;

use ddx_campaign::{aggregate_dir, run_campaign, CampaignConfig};

fn vm_hwm_kib() -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find(|line| line.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()
}

fn test_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ddx-campaign-{name}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn run(zones: u64, shards: u32, dir: PathBuf) {
    let cfg = CampaignConfig {
        seed: 0x57EAA,
        zones,
        shards,
        workers: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
        out_dir: dir,
        ..CampaignConfig::default()
    };
    run_campaign(&cfg).expect("campaign runs");
}

#[test]
fn memory_stays_flat_as_the_campaign_grows() {
    if vm_hwm_kib().is_none() {
        eprintln!("skipping: /proc/self/status unavailable (non-Linux)");
        return;
    }
    let small = test_dir("rss-small");
    let large = test_dir("rss-large");
    run(150, 3, small.clone());
    let after_small = vm_hwm_kib().unwrap();
    run(450, 9, large.clone());
    let after_large = vm_hwm_kib().unwrap();
    let growth_kib = after_large - after_small;
    assert!(
        growth_kib < 192 * 1024,
        "peak RSS grew {growth_kib} KiB between a 150- and a 450-zone campaign — \
         zones are being accumulated, not streamed"
    );
    let _ = fs::remove_dir_all(&small);
    let _ = fs::remove_dir_all(&large);
}

#[test]
#[ignore = "100k-zone campaign: minutes of CPU — run explicitly (CI campaign-smoke runs it with --ignored)"]
fn hundred_k_zone_campaign_streams_with_flat_memory() {
    if vm_hwm_kib().is_none() {
        eprintln!("skipping: /proc/self/status unavailable (non-Linux)");
        return;
    }
    let zones: u64 = std::env::var("CAMPAIGN_ZONES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000);
    let warmup = (zones / 10).max(1);

    let warm_dir = test_dir("100k-warm");
    run(warmup, 8, warm_dir.clone());
    let after_warmup = vm_hwm_kib().unwrap();

    let full_dir = test_dir("100k-full");
    run(zones, 64, full_dir.clone());
    let after_full = vm_hwm_kib().unwrap();

    let growth_kib = after_full - after_warmup;
    assert!(
        growth_kib < 512 * 1024,
        "peak RSS grew {growth_kib} KiB between a {warmup}- and a {zones}-zone campaign"
    );

    // At this scale the regenerated tables must sit inside the paper's
    // tolerances.
    let summary = aggregate_dir(&full_dir).expect("aggregates");
    assert_eq!(summary.zones, zones);
    let violations = summary.check_tolerances();
    assert!(
        violations.is_empty(),
        "campaign deviates from the paper's distributions:\n{}",
        violations.join("\n")
    );
    println!("{}", summary.render_markdown());
    let _ = fs::remove_dir_all(&warm_dir);
    let _ = fs::remove_dir_all(&full_dir);
}
