//! # ddx-campaign — Internet-scale synthetic measurement campaigns
//!
//! The paper analyzes ~1M DNSViz-logged domains; this crate regenerates
//! that scale synthetically (DESIGN.md §16). A campaign is a seeded,
//! sharded population of broken zones:
//!
//! - **Model** ([`PopulationModel`]): each zone is drawn from the
//!   Table-3-calibrated `ddx-dataset` sampler (benign-but-broken, the 47
//!   error codes at their published frequencies) or the PR 9
//!   KeyTrap-class [`ddx_replicator::AttackFamily`] corpus, from a
//!   SplitMix64 seed that is a pure function of
//!   `(campaign_seed, shard, index)` — any shard reproduces in isolation.
//! - **Engine** ([`run_campaign`]): a bounded worker pool streams each
//!   zone through replicate → probe → grok (budgeted, memoized) → DFixer
//!   and drops it; memory stays flat at any campaign size.
//! - **Shards** ([`shard`]): NDJSON with a checksummed footer; `--resume`
//!   skips shards that validate, so a killed run finishes byte-identical
//!   to an uninterrupted one.
//! - **Aggregation** ([`aggregate_dir`]): regenerates Table 3 / Table 7 /
//!   Table 6 views from the shard set, with tolerance checks against the
//!   paper's distributions.

pub mod aggregate;
pub mod engine;
pub mod model;
pub mod rng;
pub mod shard;

pub use aggregate::{aggregate_dir, Aggregator, CampaignSummary, Table3Row, Table6Row, Table7};
pub use engine::{evaluate_zone, run_campaign, shard_zone_count, CampaignConfig, CampaignOutcome};
pub use model::{PopulationModel, ZoneDraw, ZoneKind};
pub use rng::{mix64, zone_seed, SplitMix64};
pub use shard::{
    read_shard, shard_path, validate_shard, Outcome, ShardFooter, ShardWriter, ZoneRecord,
};
