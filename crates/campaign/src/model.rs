//! The generative misconfiguration model: what population does zone
//! `(shard, index)` of a campaign belong to, and what is wrong with it?
//!
//! Benign-but-broken zones reuse the calibrated Table 3 sampler from
//! `ddx-dataset` (`sample_error_set` / `sample_meta`): NZIC-only zones at
//! the paper's 168 482 / 296 813 share, co-occurring subcategories at
//! their published frequencies, zone meta-parameters (key algorithms, DS
//! digests, NSEC vs NSEC3) drawn to match. The hostile population draws
//! uniformly from the PR 9 KeyTrap-class [`AttackFamily`] corpus at a
//! configurable permille rate.

use std::collections::BTreeSet;

use rand::rngs::StdRng;
use rand::SeedableRng;

use ddx_dataset::{sample_error_set, sample_meta};
use ddx_dnsviz::ErrorCode;
use ddx_replicator::{AttackFamily, ZoneMeta};

use crate::rng::{zone_seed, SplitMix64};

/// What a drawn zone is: a calibrated misconfiguration or an attack.
#[derive(Debug, Clone)]
pub enum ZoneKind {
    Benign {
        intended: BTreeSet<ErrorCode>,
        meta: ZoneMeta,
    },
    Attack {
        family: AttackFamily,
    },
}

/// One fully specified synthetic zone, reproducible from its `seed` alone.
#[derive(Debug, Clone)]
pub struct ZoneDraw {
    pub shard: u32,
    pub index: u64,
    pub seed: u64,
    pub kind: ZoneKind,
}

/// Population weights for a campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PopulationModel {
    /// Hostile (KeyTrap-class) zones per 1000 drawn. The remainder is the
    /// Table-3-calibrated benign-but-broken population.
    pub attack_permille: u16,
}

impl Default for PopulationModel {
    /// 1% hostile: enough to keep budgets exercised in every shard without
    /// distorting the Table 3 / Table 7 regeneration.
    fn default() -> Self {
        PopulationModel {
            attack_permille: 10,
        }
    }
}

impl PopulationModel {
    /// Draws zone `index` of `shard`. Pure: same `(campaign_seed, shard,
    /// index)` → same draw, on any worker, in any order.
    pub fn draw(&self, campaign_seed: u64, shard: u32, index: u64) -> ZoneDraw {
        let seed = zone_seed(campaign_seed, shard, index);
        let mut rng = SplitMix64::new(seed);
        let hostile = rng.next_below(1000) < u64::from(self.attack_permille.min(1000));
        let kind = if hostile {
            let family = AttackFamily::ALL[rng.next_below(AttackFamily::ALL.len() as u64) as usize];
            ZoneKind::Attack { family }
        } else {
            // Hand the calibrated sampler a cross-platform deterministic
            // StdRng seeded from this zone's stream.
            let mut std_rng = StdRng::seed_from_u64(rng.next_u64());
            let intended = sample_error_set(&mut std_rng, None);
            let meta = sample_meta(&mut std_rng, &intended);
            ZoneKind::Benign { intended, meta }
        };
        ZoneDraw {
            shard,
            index,
            seed,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_reproducible() {
        let model = PopulationModel::default();
        for idx in 0..32 {
            let a = model.draw(0xC0FFEE, 2, idx);
            let b = model.draw(0xC0FFEE, 2, idx);
            assert_eq!(a.seed, b.seed);
            match (&a.kind, &b.kind) {
                (
                    ZoneKind::Benign {
                        intended: ia,
                        meta: ma,
                    },
                    ZoneKind::Benign {
                        intended: ib,
                        meta: mb,
                    },
                ) => {
                    assert_eq!(ia, ib);
                    assert_eq!(format!("{ma:?}"), format!("{mb:?}"));
                }
                (ZoneKind::Attack { family: fa }, ZoneKind::Attack { family: fb }) => {
                    assert_eq!(fa.label(), fb.label());
                }
                _ => panic!("population flipped between identical draws"),
            }
        }
    }

    #[test]
    fn attack_rate_tracks_the_permille_knob() {
        let always = PopulationModel {
            attack_permille: 1000,
        };
        let never = PopulationModel { attack_permille: 0 };
        for idx in 0..64 {
            assert!(matches!(
                always.draw(7, 0, idx).kind,
                ZoneKind::Attack { .. }
            ));
            assert!(matches!(
                never.draw(7, 0, idx).kind,
                ZoneKind::Benign { .. }
            ));
        }
    }

    #[test]
    fn benign_population_is_nzic_dominated() {
        // The calibrated sampler puts NZIC-only zones at ≈56.8% of the
        // erroneous population (168 482 / 296 813); a loose band catches
        // gross calibration regressions without flaking.
        let model = PopulationModel { attack_permille: 0 };
        let total = 600u64;
        let nzic_only = (0..total)
            .filter(|idx| match model.draw(99, 0, *idx).kind {
                ZoneKind::Benign { ref intended, .. } => {
                    intended.len() == 1 && intended.contains(&ErrorCode::Nsec3IterationsNonzero)
                }
                ZoneKind::Attack { .. } => false,
            })
            .count() as f64;
        let share = nzic_only / total as f64;
        assert!(
            (0.42..0.72).contains(&share),
            "NZIC-only share {share:.3} is far from the paper's 0.568"
        );
    }
}
