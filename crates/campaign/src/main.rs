//! `dcampaign` — run a synthetic measurement campaign and regenerate the
//! paper's tables from its shards (DESIGN.md §16).
//!
//! ```text
//! dcampaign --zones 100000 --shards 64 --seed 20200311 --out campaign-out
//! dcampaign --out campaign-out --resume          # finish a killed run
//! dcampaign --out campaign-out --aggregate-only  # re-render the tables
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use ddx_campaign::{aggregate_dir, run_campaign, CampaignConfig, PopulationModel};

struct Args {
    cfg: CampaignConfig,
    aggregate_only: bool,
    check: bool,
    metrics_out: Option<String>,
}

const USAGE: &str = "\
dcampaign — synthetic DNSSEC measurement campaign driver

USAGE:
    dcampaign --out DIR [options]

OPTIONS:
    --out DIR            output directory for NDJSON shards + summary.json (required)
    --zones N            total zones across all shards        [default: 1000]
    --shards N           shard count                          [default: 8]
    --seed N             campaign seed                        [default: 908780]
    --workers N          worker threads                       [default: #cores]
    --resume             skip shards whose NDJSON is already complete and valid
    --attack-permille N  hostile (KeyTrap-class) zones per 1000 [default: 10]
    --budget-sigs N      per-zone signature-verification cap  [default: 512]
    --budget-hashes N    per-zone NSEC3 hash-round cap        [default: 16384]
    --max-iterations N   DFixer iteration cap                 [default: 6]
    --scratch            disable incremental revalidation (probe+grok from scratch)
    --aggregate-only     only aggregate existing shards in --out and print tables
    --check              exit non-zero if Table 3/7 tolerances are violated
    --metrics-out PATH   write the ddx-obs metrics snapshot as JSON
    -h, --help           print this help
";

fn parse_args() -> Result<Args, String> {
    let mut cfg = CampaignConfig::default();
    let mut aggregate_only = false;
    let mut check = false;
    let mut metrics_out = None;
    let mut out_set = false;
    cfg.progress = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--out" => {
                cfg.out_dir = PathBuf::from(value("--out")?);
                out_set = true;
            }
            "--zones" => {
                cfg.zones = value("--zones")?
                    .parse()
                    .map_err(|e| format!("--zones: {e}"))?;
            }
            "--shards" => {
                cfg.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("--shards: {e}"))?;
                if cfg.shards == 0 {
                    return Err("--shards must be at least 1".into());
                }
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--workers" => {
                cfg.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--resume" => cfg.resume = true,
            "--attack-permille" => {
                let permille: u16 = value("--attack-permille")?
                    .parse()
                    .map_err(|e| format!("--attack-permille: {e}"))?;
                if permille > 1000 {
                    return Err("--attack-permille must be ≤ 1000".into());
                }
                cfg.model = PopulationModel {
                    attack_permille: permille,
                };
            }
            "--budget-sigs" => {
                cfg.budget.max_sig_verifications = value("--budget-sigs")?
                    .parse()
                    .map_err(|e| format!("--budget-sigs: {e}"))?;
            }
            "--budget-hashes" => {
                cfg.budget.max_nsec3_hashes = value("--budget-hashes")?
                    .parse()
                    .map_err(|e| format!("--budget-hashes: {e}"))?;
            }
            "--max-iterations" => {
                cfg.max_iterations = value("--max-iterations")?
                    .parse()
                    .map_err(|e| format!("--max-iterations: {e}"))?;
            }
            "--scratch" => cfg.incremental = false,
            "--aggregate-only" => aggregate_only = true,
            "--check" => check = true,
            "--metrics-out" => metrics_out = Some(value("--metrics-out")?),
            "-h" | "--help" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    if !out_set {
        return Err("--out is required".into());
    }
    Ok(Args {
        cfg,
        aggregate_only,
        check,
        metrics_out,
    })
}

fn dump_metrics(path: &str) {
    let snap = ddx_obs::snapshot();
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => {
            println!("\n== metrics ({path}) ==");
            print!("{}", snap.render_report());
        }
        Err(e) => eprintln!("warning: could not write metrics to {path}: {e}"),
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    if !args.aggregate_only {
        match run_campaign(&args.cfg) {
            Ok(outcome) => println!(
                "campaign: zones={} shards={} written={} resumed={}",
                args.cfg.zones, args.cfg.shards, outcome.shards_written, outcome.shards_resumed
            ),
            Err(e) => {
                eprintln!("error: campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    let summary = match aggregate_dir(&args.cfg.out_dir) {
        Ok(summary) => summary,
        Err(e) => {
            eprintln!("error: aggregation failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let summary_path = args.cfg.out_dir.join("summary.json");
    if let Err(e) = std::fs::write(&summary_path, summary.to_json()) {
        eprintln!("error: could not write {}: {e}", summary_path.display());
        return ExitCode::FAILURE;
    }
    println!();
    print!("{}", summary.render_markdown());

    if let Some(path) = &args.metrics_out {
        dump_metrics(path);
    }

    if args.check {
        let violations = summary.check_tolerances();
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("tolerance violation: {v}");
            }
            return ExitCode::FAILURE;
        }
        println!("tolerances: ok");
    }
    ExitCode::SUCCESS
}
