//! NDJSON result shards: one line per zone, one self-validating footer
//! per shard.
//!
//! A shard file is complete iff its last line is a footer whose zone
//! count, campaign seed, shard index, and FNV-1a-64 checksum (over the
//! record lines, newline included) all match. Shards are written to a
//! `.tmp` sibling and renamed into place on completion, so a killed run
//! never leaves a plausible-looking partial shard — `--resume` re-checks
//! the footer anyway, making truncation detectable even if a stray rename
//! happened.

use std::collections::BTreeSet;
use std::fs;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ddx_dnsviz::ErrorCode;
use ddx_fixer::InstructionKind;

/// Terminal outcome of one synthetic zone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Outcome {
    /// Zone meta-parameters were unreplicable (e.g. an unsupported
    /// algorithm with no substitution) — no sandbox was built.
    MetaError,
    /// The sandbox was built but grok did not reproduce every intended
    /// error code, so the fixer never ran (mirrors the pipeline's
    /// replication gate).
    Unreplicated,
    /// DFixer converged: the final re-verification found no errors.
    Fixed,
    /// DFixer exhausted its iteration cap with errors remaining.
    Unfixed,
}

impl Outcome {
    pub fn label(self) -> &'static str {
        match self {
            Outcome::MetaError => "meta_error",
            Outcome::Unreplicated => "unreplicated",
            Outcome::Fixed => "fixed",
            Outcome::Unfixed => "unfixed",
        }
    }
}

/// One zone's evaluation, as serialized into its shard. Field order is
/// the serialization order; nothing here may depend on wall-clock or
/// iteration order of unordered containers — byte-identical NDJSON across
/// runs and worker counts is a tested invariant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZoneRecord {
    pub shard: u32,
    pub index: u64,
    pub seed: u64,
    /// `"benign"` or `"attack"`.
    pub population: String,
    /// Attack family label for hostile zones.
    pub attack: Option<String>,
    pub intended: BTreeSet<ErrorCode>,
    /// `(code ident, reason)` for intended codes the injector skipped.
    pub skipped: Vec<(String, String)>,
    pub generated: BTreeSet<ErrorCode>,
    pub outcome: Outcome,
    pub meta_error: Option<String>,
    pub iterations: u64,
    /// Flattened DFixer plan: `(iteration, instruction kind)`.
    pub instructions: Vec<(u64, InstructionKind)>,
    /// Instructions deferred on absence evidence, summed over iterations.
    pub deferred: u64,
    pub final_errors: BTreeSet<ErrorCode>,
}

/// The trailing self-validation line of a complete shard.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardFooter {
    pub shard: u32,
    pub zones: u64,
    pub campaign_seed: u64,
    /// FNV-1a-64 over the record lines (newlines included), lowercase hex.
    pub checksum: String,
}

/// Wire shape of the footer line: `{"shard_footer":{...}}` — cannot be
/// confused with a [`ZoneRecord`] line.
#[derive(Serialize, Deserialize)]
struct FooterLine {
    shard_footer: ShardFooter,
}

const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;

fn fnv1a(mut acc: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        acc ^= u64::from(*b);
        acc = acc.wrapping_mul(FNV_PRIME);
    }
    acc
}

/// `shard-00042.ndjson` under `dir`.
pub fn shard_path(dir: &Path, shard: u32) -> PathBuf {
    dir.join(format!("shard-{shard:05}.ndjson"))
}

fn invalid(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Streaming shard writer: records go straight to disk (via `BufWriter`),
/// never accumulated in memory; [`ShardWriter::finish`] appends the
/// footer and renames the temp file into place.
pub struct ShardWriter {
    tmp: PathBuf,
    path: PathBuf,
    out: BufWriter<fs::File>,
    shard: u32,
    campaign_seed: u64,
    zones: u64,
    checksum: u64,
}

impl ShardWriter {
    pub fn create(dir: &Path, shard: u32, campaign_seed: u64) -> io::Result<Self> {
        let path = shard_path(dir, shard);
        let tmp = path.with_extension("ndjson.tmp");
        let out = BufWriter::new(fs::File::create(&tmp)?);
        Ok(ShardWriter {
            tmp,
            path,
            out,
            shard,
            campaign_seed,
            zones: 0,
            checksum: FNV_OFFSET,
        })
    }

    pub fn write(&mut self, record: &ZoneRecord) -> io::Result<()> {
        let mut line = serde_json::to_string(record)
            .map_err(|e| invalid(format!("record does not serialize: {e}")))?;
        line.push('\n');
        self.checksum = fnv1a(self.checksum, line.as_bytes());
        self.out.write_all(line.as_bytes())?;
        self.zones += 1;
        Ok(())
    }

    /// Writes the footer, flushes, and renames the shard into place.
    pub fn finish(mut self) -> io::Result<ShardFooter> {
        let footer = ShardFooter {
            shard: self.shard,
            zones: self.zones,
            campaign_seed: self.campaign_seed,
            checksum: format!("{:016x}", self.checksum),
        };
        let line = serde_json::to_string(&FooterLine {
            shard_footer: footer.clone(),
        })
        .map_err(|e| invalid(format!("footer does not serialize: {e}")))?;
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        drop(self.out);
        fs::rename(&self.tmp, &self.path)?;
        Ok(footer)
    }
}

/// Reads and fully validates one shard: every record parses, the footer
/// is present and last, and count + checksum match the record lines.
pub fn read_shard(path: &Path) -> io::Result<(Vec<ZoneRecord>, ShardFooter)> {
    let reader = BufReader::new(fs::File::open(path)?);
    let mut records = Vec::new();
    let mut footer: Option<ShardFooter> = None;
    let mut checksum = FNV_OFFSET;
    for line in reader.lines() {
        let line = line?;
        if footer.is_some() {
            return Err(invalid(format!(
                "{}: content after the shard footer",
                path.display()
            )));
        }
        if line.starts_with("{\"shard_footer\"") {
            let parsed: FooterLine = serde_json::from_str(&line)
                .map_err(|e| invalid(format!("{}: bad footer: {e}", path.display())))?;
            footer = Some(parsed.shard_footer);
        } else {
            checksum = fnv1a(checksum, line.as_bytes());
            checksum = fnv1a(checksum, b"\n");
            let record: ZoneRecord = serde_json::from_str(&line)
                .map_err(|e| invalid(format!("{}: bad record: {e}", path.display())))?;
            records.push(record);
        }
    }
    let footer =
        footer.ok_or_else(|| invalid(format!("{}: missing shard footer", path.display())))?;
    if footer.zones != records.len() as u64 {
        return Err(invalid(format!(
            "{}: footer claims {} zones, file has {}",
            path.display(),
            footer.zones,
            records.len()
        )));
    }
    let computed = format!("{checksum:016x}");
    if footer.checksum != computed {
        return Err(invalid(format!(
            "{}: checksum mismatch (footer {}, computed {computed})",
            path.display(),
            footer.checksum
        )));
    }
    Ok((records, footer))
}

/// Is `path` a complete, valid shard for exactly this campaign slot?
/// Used by `--resume` to decide whether a shard can be skipped.
pub fn validate_shard(path: &Path, shard: u32, campaign_seed: u64, expected_zones: u64) -> bool {
    match read_shard(path) {
        Ok((_, footer)) => {
            footer.shard == shard
                && footer.campaign_seed == campaign_seed
                && footer.zones == expected_zones
        }
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(shard: u32, index: u64) -> ZoneRecord {
        ZoneRecord {
            shard,
            index,
            seed: 0xABCD + index,
            population: "benign".into(),
            attack: None,
            intended: BTreeSet::from([ErrorCode::RrsigExpired]),
            skipped: Vec::new(),
            generated: BTreeSet::from([ErrorCode::RrsigExpired]),
            outcome: Outcome::Fixed,
            meta_error: None,
            iterations: 1,
            instructions: Vec::new(),
            deferred: 0,
            final_errors: BTreeSet::new(),
        }
    }

    #[test]
    fn roundtrip_and_validation() {
        let dir = std::env::temp_dir().join(format!("ddx-shard-test-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let mut w = ShardWriter::create(&dir, 3, 77).unwrap();
        for i in 0..5 {
            w.write(&record(3, i)).unwrap();
        }
        let footer = w.finish().unwrap();
        assert_eq!(footer.zones, 5);

        let path = shard_path(&dir, 3);
        let (records, read_footer) = read_shard(&path).unwrap();
        assert_eq!(records.len(), 5);
        assert_eq!(read_footer, footer);
        assert!(validate_shard(&path, 3, 77, 5));
        // Wrong slot, seed, or count → not resumable.
        assert!(!validate_shard(&path, 4, 77, 5));
        assert!(!validate_shard(&path, 3, 78, 5));
        assert!(!validate_shard(&path, 3, 77, 6));

        // Truncation is caught by the missing footer / checksum.
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(!validate_shard(&path, 3, 77, 5));
        fs::remove_dir_all(&dir).unwrap();
    }
}
