//! Campaign aggregation: regenerates the paper's Table 3 (error-frequency
//! distribution) and Table 7 (instruction × iteration histogram) from the
//! NDJSON result shards, plus a Table 6-style replication/fix-rate view
//! split into S1 (NZIC-only), S2, and the hostile population.
//!
//! Aggregation is order-insensitive (sums and `BTreeMap`s only) and
//! timestamp-free, so the summary for a given shard set is byte-stable —
//! the CI resume check compares `summary.json` with `cmp`.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

use ddx_dataset::params;
use ddx_dnsviz::{ErrorCode, Subcategory};
use ddx_fixer::InstructionKind;

use crate::shard::{read_shard, Outcome, ZoneRecord};

/// One Table 3 row: how often a subcategory was drawn (intended) and how
/// often grok actually reproduced it, against the paper's share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table3Row {
    pub subcategory: String,
    /// Benign zones whose intended error set touches this subcategory.
    pub drawn_zones: u64,
    /// `drawn_zones / benign zones`.
    pub drawn_share: f64,
    /// `params::subcategory_snapshots / ERROR_SNAPSHOTS` (Table 3).
    pub paper_share: f64,
    /// Benign zones where grok reported a code of this subcategory.
    pub generated_zones: u64,
}

/// Table 6-style replication/fix rates for one population class.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table6Row {
    pub class: String,
    pub zones: u64,
    pub replicated: u64,
    pub fixed: u64,
}

impl Table6Row {
    fn new(class: &str) -> Self {
        Table6Row {
            class: class.to_string(),
            zones: 0,
            replicated: 0,
            fixed: 0,
        }
    }

    fn add(&mut self, record: &ZoneRecord) {
        self.zones += 1;
        if matches!(record.outcome, Outcome::Fixed | Outcome::Unfixed) {
            self.replicated += 1;
        }
        if record.outcome == Outcome::Fixed {
            self.fixed += 1;
        }
    }
}

/// Table 7: DFixer instructions by kind × iteration, over the S2
/// population (NZIC-only zones are a one-instruction fix and would drown
/// the histogram, exactly as in the paper), plus how many iterations
/// fixed zones needed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table7 {
    /// `(instruction kind, counts at iterations 1..=6)`, kind-sorted.
    /// Iterations past 6 are clamped into the last bucket.
    pub instruction_histogram: Vec<(String, [u64; 6])>,
    /// Instructions issued at iteration > 6 (clamped above).
    pub histogram_overflow: u64,
    /// Fixed S2 zones by iterations-to-converge (1..=6, clamped).
    pub iterations_to_fix: [u64; 6],
    /// Fixed S2 zones that needed more than 6 iterations (clamped above).
    pub iterations_overflow: u64,
    /// Largest iteration count observed on any fixed S2 zone.
    pub max_iterations: u64,
}

/// The full campaign roll-up, serialized as `summary.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignSummary {
    pub campaign_seed: u64,
    pub shards: u64,
    pub zones: u64,
    pub benign_zones: u64,
    pub attack_zones: u64,
    pub outcomes: BTreeMap<String, u64>,
    pub attack_families: BTreeMap<String, u64>,
    /// Codes grok reported, across the whole campaign.
    pub generated_codes: BTreeMap<String, u64>,
    /// Codes still present after DFixer gave up (unfixed zones).
    pub residual_codes: BTreeMap<String, u64>,
    pub table3: Vec<Table3Row>,
    pub table6: Vec<Table6Row>,
    pub table7: Table7,
}

/// Streaming record accumulator; call [`Aggregator::add`] per record and
/// [`Aggregator::finish`] once.
#[derive(Default)]
pub struct Aggregator {
    campaign_seed: Option<u64>,
    shards: u64,
    zones: u64,
    benign_zones: u64,
    attack_zones: u64,
    outcomes: BTreeMap<String, u64>,
    attack_families: BTreeMap<String, u64>,
    generated_codes: BTreeMap<String, u64>,
    residual_codes: BTreeMap<String, u64>,
    drawn_subs: BTreeMap<Subcategory, u64>,
    generated_subs: BTreeMap<Subcategory, u64>,
    s1: Table6Row,
    s2: Table6Row,
    attack: Table6Row,
    histogram: BTreeMap<InstructionKind, [u64; 6]>,
    histogram_overflow: u64,
    iterations_to_fix: [u64; 6],
    iterations_overflow: u64,
    max_iterations: u64,
}

fn is_s1(record: &ZoneRecord) -> bool {
    record.intended.len() == 1 && record.intended.contains(&ErrorCode::Nsec3IterationsNonzero)
}

fn subcategories(
    codes: impl Iterator<Item = ErrorCode>,
) -> std::collections::BTreeSet<Subcategory> {
    codes.map(|c| c.subcategory()).collect()
}

impl Aggregator {
    pub fn new() -> Self {
        Aggregator {
            s1: Table6Row::new("s1 (NZIC-only)"),
            s2: Table6Row::new("s2"),
            attack: Table6Row::new("attack"),
            ..Aggregator::default()
        }
    }

    /// Folds in one shard footer (seed consistency + shard count).
    pub fn add_shard(&mut self, campaign_seed: u64) -> io::Result<()> {
        match self.campaign_seed {
            None => self.campaign_seed = Some(campaign_seed),
            Some(seen) if seen != campaign_seed => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("mixed campaign seeds in shard set: {seen} vs {campaign_seed}"),
                ));
            }
            Some(_) => {}
        }
        self.shards += 1;
        Ok(())
    }

    pub fn add(&mut self, record: &ZoneRecord) {
        self.zones += 1;
        *self
            .outcomes
            .entry(record.outcome.label().to_string())
            .or_insert(0) += 1;
        for code in &record.generated {
            *self.generated_codes.entry(code.ident()).or_insert(0) += 1;
        }
        if record.outcome == Outcome::Unfixed {
            for code in &record.final_errors {
                *self.residual_codes.entry(code.ident()).or_insert(0) += 1;
            }
        }

        if let Some(family) = &record.attack {
            self.attack_zones += 1;
            *self.attack_families.entry(family.clone()).or_insert(0) += 1;
            self.attack.add(record);
            return;
        }

        self.benign_zones += 1;
        for sub in subcategories(record.intended.iter().copied()) {
            *self.drawn_subs.entry(sub).or_insert(0) += 1;
        }
        for sub in subcategories(record.generated.iter().copied()) {
            *self.generated_subs.entry(sub).or_insert(0) += 1;
        }

        if is_s1(record) {
            self.s1.add(record);
            return;
        }
        self.s2.add(record);
        // Table 7 is S2-only, mirroring the pipeline's summarize(): NZIC
        // one-liners excluded, iterations past 6 clamped into the last
        // bucket with an explicit overflow count.
        for (iteration, kind) in &record.instructions {
            let bucket = (*iteration).min(6);
            if bucket >= 1 {
                self.histogram.entry(*kind).or_insert([0; 6])[(bucket - 1) as usize] += 1;
                if *iteration > 6 {
                    self.histogram_overflow += 1;
                }
            }
        }
        if record.outcome == Outcome::Fixed {
            let bucket = record.iterations.min(6);
            if bucket >= 1 {
                self.iterations_to_fix[(bucket - 1) as usize] += 1;
            }
            if record.iterations > 6 {
                self.iterations_overflow += 1;
            }
            self.max_iterations = self.max_iterations.max(record.iterations);
        }
    }

    pub fn finish(self) -> CampaignSummary {
        let benign = self.benign_zones.max(1) as f64;
        let table3 = Subcategory::ALL
            .iter()
            .map(|sub| {
                let drawn = self.drawn_subs.get(sub).copied().unwrap_or(0);
                Table3Row {
                    subcategory: format!("{sub:?}"),
                    drawn_zones: drawn,
                    drawn_share: drawn as f64 / benign,
                    paper_share: params::subcategory_snapshots(*sub) as f64
                        / params::ERROR_SNAPSHOTS as f64,
                    generated_zones: self.generated_subs.get(sub).copied().unwrap_or(0),
                }
            })
            .collect();
        CampaignSummary {
            campaign_seed: self.campaign_seed.unwrap_or(0),
            shards: self.shards,
            zones: self.zones,
            benign_zones: self.benign_zones,
            attack_zones: self.attack_zones,
            outcomes: self.outcomes,
            attack_families: self.attack_families,
            generated_codes: self.generated_codes,
            residual_codes: self.residual_codes,
            table3,
            table6: vec![self.s1, self.s2, self.attack],
            table7: Table7 {
                instruction_histogram: self
                    .histogram
                    .into_iter()
                    .map(|(kind, counts)| (format!("{kind:?}"), counts))
                    .collect(),
                histogram_overflow: self.histogram_overflow,
                iterations_to_fix: self.iterations_to_fix,
                iterations_overflow: self.iterations_overflow,
                max_iterations: self.max_iterations,
            },
        }
    }
}

/// Aggregates every `shard-*.ndjson` under `dir` (validating each), in
/// filename order.
pub fn aggregate_dir(dir: &Path) -> io::Result<CampaignSummary> {
    let mut paths: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".ndjson"))
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no shard-*.ndjson files under {}", dir.display()),
        ));
    }
    let mut agg = Aggregator::new();
    for path in paths {
        let (records, footer) = read_shard(&path)?;
        agg.add_shard(footer.campaign_seed)?;
        for record in &records {
            agg.add(record);
        }
    }
    Ok(agg.finish())
}

impl CampaignSummary {
    /// Stable JSON for `summary.json` (byte-identical for identical shard
    /// sets — the resume check relies on it).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("summary serializes")
    }

    /// Markdown tables (every row starts with `|`, so CI can lift them
    /// into the step summary with `grep '^|'`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str("| Class | Zones | Replicated | Fixed | RR | FR |\n");
        out.push_str("|---|---|---|---|---|---|\n");
        for row in &self.table6 {
            let rr = row.replicated as f64 / row.zones.max(1) as f64;
            let fr = row.fixed as f64 / row.replicated.max(1) as f64;
            out.push_str(&format!(
                "| {} | {} | {} | {} | {:.3} | {:.3} |\n",
                row.class, row.zones, row.replicated, row.fixed, rr, fr
            ));
        }
        out.push('\n');
        out.push_str("| Subcategory (Table 3) | Drawn | Share | Paper | Generated |\n");
        out.push_str("|---|---|---|---|---|\n");
        for row in &self.table3 {
            if row.drawn_zones == 0 && row.paper_share < 0.01 {
                continue;
            }
            out.push_str(&format!(
                "| {} | {} | {:.3} | {:.3} | {} |\n",
                row.subcategory,
                row.drawn_zones,
                row.drawn_share,
                row.paper_share,
                row.generated_zones
            ));
        }
        out.push('\n');
        out.push_str("| Instruction (Table 7) | It1 | It2 | It3 | It4 | It5 | It6 |\n");
        out.push_str("|---|---|---|---|---|---|---|\n");
        for (kind, counts) in &self.table7.instruction_histogram {
            out.push_str(&format!(
                "| {} | {} | {} | {} | {} | {} | {} |\n",
                kind, counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]
            ));
        }
        let it = &self.table7.iterations_to_fix;
        out.push_str(&format!(
            "| Fixed zones by iterations | {} | {} | {} | {} | {} | {} |\n",
            it[0], it[1], it[2], it[3], it[4], it[5]
        ));
        out
    }

    /// Tolerance checks against the paper's distributions; returns the
    /// violations (empty = within tolerance). Checks are gated on sample
    /// size so smoke-scale runs cannot flake.
    pub fn check_tolerances(&self) -> Vec<String> {
        let mut violations = Vec::new();
        let benign = self.benign_zones;
        if benign >= 500 {
            // S1 share of the benign population vs 168 482 / 296 813.
            let s1 = &self.table6[0];
            let share = s1.zones as f64 / benign as f64;
            let paper = params::NZIC_ONLY_SNAPSHOTS as f64 / params::ERROR_SNAPSHOTS as f64;
            if (share - paper).abs() > 0.08 {
                violations.push(format!(
                    "NZIC-only share {share:.3} deviates from the paper's {paper:.3} by > 0.08"
                ));
            }
            // Every ≥5%-of-snapshots subcategory must appear in the draw.
            for row in &self.table3 {
                if row.paper_share >= 0.05 && row.drawn_zones == 0 {
                    violations.push(format!(
                        "subcategory {} ({}% of paper snapshots) never drawn",
                        row.subcategory,
                        (row.paper_share * 100.0).round()
                    ));
                }
                if row.drawn_zones > 0 && row.paper_share == 0.0 {
                    violations.push(format!(
                        "subcategory {} drawn but has zero paper mass",
                        row.subcategory
                    ));
                }
            }
        }
        let fixed: u64 = self.table7.iterations_to_fix.iter().sum();
        if fixed >= 20 {
            // Table 7: convergence is front-loaded — the paper records no
            // resolution past iteration 4.
            let within4: u64 = self.table7.iterations_to_fix[..4].iter().sum();
            if (within4 as f64) < 0.90 * fixed as f64 {
                violations.push(format!(
                    "only {within4}/{fixed} fixed S2 zones converged within 4 iterations"
                ));
            }
            if self.table7.iterations_overflow > 0 {
                violations.push(format!(
                    "{} fixed zones needed more than 6 iterations",
                    self.table7.iterations_overflow
                ));
            }
            let early: u64 = self.table7.iterations_to_fix[..2].iter().sum();
            if (early as f64) < 0.50 * fixed as f64 {
                violations.push(format!(
                    "only {early}/{fixed} fixed S2 zones converged within 2 iterations"
                ));
            }
        }
        violations
    }
}
