//! Deterministic seeding for campaign draws.
//!
//! Every zone's seed is a pure function of `(campaign_seed, shard_index,
//! index_in_shard)` — no sequential stream state — so any shard (and any
//! single zone) is reproducible in isolation, regardless of worker count
//! or evaluation order. The mixer is SplitMix64 (Steele et al., *Fast
//! Splittable Pseudorandom Number Generators*), the same finalizer the
//! pipeline already uses for per-snapshot seed derivation.

/// The SplitMix64 stream increment (odd, 2⁶⁴/φ).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// A SplitMix64 generator: tiny, splittable, and trivially portable —
/// ideal for deriving a handful of independent decisions per zone.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A bounded draw without modulo bias worth caring about at campaign
    /// scale (bound ≪ 2⁶⁴).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// One SplitMix64 step from state `x` — a stateless 64-bit mixer.
pub fn mix64(x: u64) -> u64 {
    SplitMix64::new(x).next_u64()
}

/// The seed for zone `index_in_shard` of shard `shard`: reproducible from
/// `(campaign_seed, shard, index)` alone. Independent of the total zone
/// count and the worker count, so resharding a campaign never silently
/// changes the zones that shards it did not touch.
pub fn zone_seed(campaign_seed: u64, shard: u32, index_in_shard: u64) -> u64 {
    let shard_key = mix64(campaign_seed ^ mix64(u64::from(shard).wrapping_mul(GOLDEN_GAMMA)));
    mix64(shard_key ^ index_in_shard.wrapping_mul(GOLDEN_GAMMA))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_known_answer() {
        // Reference vector from the SplitMix64 public-domain implementation
        // (Vigna): seed 0 → e220a8397b1dcdaf 6e789e6aa1b965f4 06c45d188009454f.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(rng.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn zone_seed_is_pure_and_distinct() {
        assert_eq!(zone_seed(42, 3, 7), zone_seed(42, 3, 7));
        let mut seen = std::collections::BTreeSet::new();
        for shard in 0..8u32 {
            for idx in 0..64u64 {
                assert!(
                    seen.insert(zone_seed(42, shard, idx)),
                    "seed collision at shard {shard} index {idx}"
                );
            }
        }
        // Different campaign seeds diverge immediately.
        assert_ne!(zone_seed(42, 0, 0), zone_seed(43, 0, 0));
    }
}
