//! The end-to-end evaluation pipeline (paper Fig 7 / §5):
//! snapshot → parse → ZReplicator → grok (GE) → DFixer → grok (AE),
//! aggregated into the Replication Rate and Fix Rate of Table 6 and the
//! per-iteration instruction histogram of Table 7.

use std::collections::BTreeSet;

use ddx_dataset::{Corpus, Snapshot};
use ddx_dnsviz::{grok, probe, ErrorCode, ErrorDetail, GrokMemo};
use ddx_fixer::{run_fixer_with_memo, FixerOptions, InstructionKind};
use ddx_replicator::{parent_apex, replicate, ReplicationRequest};

/// Pipeline configuration.
#[derive(Debug, Clone)]
pub struct EvalConfig {
    /// Maximum erroneous snapshots to evaluate (they are taken in corpus
    /// order; `usize::MAX` evaluates everything).
    pub max_snapshots: usize,
    pub seed: u64,
    pub fixer: FixerOptions,
    /// When set, the GE probe runs through a [`ddx_server::FaultNetwork`]
    /// with this plan (seeded per snapshot: `plan.seed ^ snapshot seed`) —
    /// chaos mode for resilience experiments. `None` probes the testbed
    /// directly.
    pub fault_plan: Option<ddx_server::FaultPlan>,
    /// Overrides the probe retry policy for every snapshot when set.
    pub retry: Option<ddx_dnsviz::RetryPolicy>,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig {
            max_snapshots: 2_000,
            seed: 0xE7A1,
            fixer: FixerOptions::default(),
            fault_plan: None,
            retry: None,
        }
    }
}

/// Per-snapshot outcome (the IE/GE/AE sets of §5.2).
#[derive(Debug, Clone)]
pub struct SnapshotEval {
    /// Intended errors from the snapshot.
    pub intended: BTreeSet<ErrorCode>,
    /// Errors the replicated zone actually exhibits.
    pub generated: BTreeSet<ErrorCode>,
    /// Errors remaining after DFixer (None when DFixer was not run because
    /// replication failed).
    pub after_fix: Option<BTreeSet<ErrorCode>>,
    /// IE ⊆ GE and IE ≠ ∅.
    pub replicated: bool,
    /// NZIC-only snapshot (paper's S1).
    pub s1: bool,
    /// DFixer iterations used (0 when not run).
    pub iterations: usize,
    /// (iteration, instruction kind) pairs issued.
    pub instructions: Vec<(usize, InstructionKind)>,
    /// Addressed-cause detail payloads carrying a structured (non-Note)
    /// variant, across all iterations.
    pub typed_details: u64,
    /// All addressed-cause detail payloads seen across all iterations.
    pub total_details: u64,
}

/// Table 6 row: one dataset slice.
#[derive(Debug, Clone, Default)]
pub struct Table6Row {
    pub label: &'static str,
    /// # snapshots in the slice (IE ≠ ∅).
    pub snapshots: u64,
    /// GE ≠ ∅.
    pub ge_nonempty: u64,
    /// IE ⊆ GE and IE ≠ ∅.
    pub replicated: u64,
    /// AE = ∅ among replicated.
    pub fixed: u64,
}

impl Table6Row {
    /// Replication Rate (§5.2).
    pub fn rr(&self) -> f64 {
        self.replicated as f64 / (self.snapshots as f64).max(1.0)
    }

    /// Fix Rate (§5.2).
    pub fn fr(&self) -> f64 {
        self.fixed as f64 / (self.replicated as f64).max(1.0)
    }
}

/// The aggregated evaluation result.
#[derive(Debug, Clone)]
pub struct EvalSummary {
    pub s1: Table6Row,
    pub s2: Table6Row,
    /// Table 7: `counts[kind][iteration-1]` over the S2 subset; iterations
    /// past 6 are clamped into the last bucket.
    pub instruction_histogram: Vec<(InstructionKind, [u64; 6])>,
    /// Instructions issued at iteration > 6 (clamped into bucket 6 above
    /// rather than silently dropped).
    pub histogram_overflow: u64,
    /// Maximum iterations any fixed zone needed.
    pub max_iterations: usize,
    /// Addressed-cause detail payloads that carried a structured variant
    /// (everything except `ErrorDetail::Note`), summed over all runs — a
    /// coverage measure for the typed diagnostic model.
    pub typed_details: u64,
    /// All addressed-cause detail payloads DFixer consumed.
    pub total_details: u64,
    /// Global-registry metric deltas accumulated while this evaluation ran
    /// (`pipeline.*` stage timers plus every subsystem counter the run
    /// touched). Deliberately excluded from seq/parallel equivalence
    /// checks: wall-clock histograms differ between runs by construction.
    pub metrics: ddx_obs::MetricsSnapshot,
}

impl EvalSummary {
    pub fn total(&self) -> Table6Row {
        Table6Row {
            label: "Total",
            snapshots: self.s1.snapshots + self.s2.snapshots,
            ge_nonempty: self.s1.ge_nonempty + self.s2.ge_nonempty,
            replicated: self.s1.replicated + self.s2.replicated,
            fixed: self.s1.fixed + self.s2.fixed,
        }
    }
}

/// Evaluates one snapshot through the full replicate→grok→fix→grok cycle.
pub fn evaluate_snapshot(snapshot: &Snapshot, cfg: &EvalConfig, index: u64) -> SnapshotEval {
    ddx_obs::counter("pipeline.snapshots", &[]).inc();
    let stage_timer = |stage| ddx_obs::histogram("pipeline.stage_us", &[("stage", stage)]);
    let intended = snapshot.errors.clone();
    let s1 = snapshot.is_nzic_only();
    let request = ReplicationRequest {
        meta: snapshot.meta.clone(),
        intended: intended.clone(),
    };
    let seed = cfg.seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let replicate_timer = stage_timer("replicate").start_timer();
    let replicated_zone = replicate(&request, 1_000_000, seed);
    drop(replicate_timer);
    let Ok(mut rep) = replicated_zone else {
        // Algorithm exhaustion: nothing could be generated.
        return SnapshotEval {
            intended,
            generated: BTreeSet::new(),
            after_fix: None,
            replicated: false,
            s1,
            iterations: 0,
            instructions: Vec::new(),
            typed_details: 0,
            total_details: 0,
        };
    };
    // The rare parent-bogus condition (paper §5.4): DS present upstream but
    // the parent's DNSKEY RRset is gone; a child-side fix cannot help.
    if snapshot.parent_broken {
        let parent = parent_apex();
        rep.sandbox.testbed.mutate_zone_everywhere(&parent, |zone| {
            zone.strip_type(ddx_dns::RrType::Dnskey);
        });
    }
    let mut probe_cfg = rep.probe.clone();
    if let Some(retry) = &cfg.retry {
        probe_cfg.retry = retry.clone();
    }
    // One memo follows the snapshot through GE and the fixer loop: the GE
    // walk warms it, so the fixer's first iteration (same state, same
    // clock) revalidates without a single query.
    let mut memo = GrokMemo::new();
    // The split `probe` / `grok` labels attribute walk time and analysis
    // time separately (the combined `probe_grok` label was removed after
    // its one-release deprecation window).
    let report = match &cfg.fault_plan {
        Some(plan) => {
            // A flapping fault network is order-dependent, so the GE walk
            // under faults is never memoized; the memo reaches the fixer
            // cold and warms up on its first (un-faulted) iteration.
            let mut plan = plan.clone();
            plan.seed ^= seed;
            let faulty = ddx_server::FaultNetwork::new(&rep.sandbox.testbed, plan);
            let probe_timer = stage_timer("probe").start_timer();
            let probe_result = probe(&faulty, &probe_cfg);
            drop(probe_timer);
            let grok_timer = stage_timer("grok").start_timer();
            let report = grok(&probe_result);
            drop(grok_timer);
            report
        }
        None if cfg.fixer.incremental => {
            let probe_timer = stage_timer("probe").start_timer();
            let probe_result =
                memo.probe_incremental(&rep.sandbox.testbed, &rep.sandbox.testbed, &probe_cfg);
            drop(probe_timer);
            let grok_timer = stage_timer("grok").start_timer();
            let report = memo.grok_incremental(&probe_result);
            drop(grok_timer);
            report
        }
        None => {
            let probe_timer = stage_timer("probe").start_timer();
            let probe_result = probe(&rep.sandbox.testbed, &probe_cfg);
            drop(probe_timer);
            let grok_timer = stage_timer("grok").start_timer();
            let report = grok(&probe_result);
            drop(grok_timer);
            report
        }
    };
    let generated = report.codes();
    let replicated = !intended.is_empty() && intended.is_subset(&generated);
    if !replicated || generated.is_empty() {
        return SnapshotEval {
            intended,
            generated,
            after_fix: None,
            replicated,
            s1,
            iterations: 0,
            instructions: Vec::new(),
            typed_details: 0,
            total_details: 0,
        };
    }
    let mut fixer_opts = cfg.fixer.clone();
    fixer_opts.seed = seed ^ 0xF1;
    let fix_timer = stage_timer("fix").start_timer();
    let run = run_fixer_with_memo(&mut rep.sandbox, &probe_cfg, &fixer_opts, &mut memo);
    drop(fix_timer);
    let instructions = run
        .iterations
        .iter()
        .flat_map(|it| it.plan.iter().map(move |i| (it.iteration, i.kind())))
        .collect();
    let details = || run.iterations.iter().flat_map(|it| &it.addressed_details);
    let total_details = details().count() as u64;
    let typed_details = details()
        .filter(|d| !matches!(d, ErrorDetail::Note(_)))
        .count() as u64;
    SnapshotEval {
        intended,
        generated,
        after_fix: Some(run.final_errors),
        replicated,
        s1,
        iterations: run.iterations.len(),
        instructions,
        typed_details,
        total_details,
    }
}

/// Runs the pipeline over (a sample of) the corpus' erroneous snapshots,
/// fanning the per-snapshot work out over `workers` threads (the paper's
/// evaluation used a 38-core machine to cover 747K snapshots in 36 hours).
/// Results are identical to the sequential path: every snapshot's seed is
/// derived from its index, not from scheduling order.
pub fn evaluate_corpus_parallel(corpus: &Corpus, cfg: &EvalConfig, workers: usize) -> EvalSummary {
    let metrics_before = ddx_obs::snapshot();
    let snapshots: Vec<&Snapshot> = corpus
        .erroneous_snapshots()
        .take(cfg.max_snapshots)
        .collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut per_worker: Vec<Vec<(usize, SnapshotEval)>> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..workers.max(1) {
            let next = &next;
            let snapshots = &snapshots;
            handles.push(scope.spawn(move |_| {
                let mut out = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if i >= snapshots.len() {
                        break;
                    }
                    out.push((i, evaluate_snapshot(snapshots[i], cfg, i as u64)));
                }
                out
            }));
        }
        for h in handles {
            per_worker.push(h.join().expect("worker panicked"));
        }
    })
    .expect("scope");
    let mut evals: Vec<(usize, SnapshotEval)> = per_worker.into_iter().flatten().collect();
    evals.sort_by_key(|(i, _)| *i);
    let mut summary = summarize(evals.into_iter().map(|(_, e)| e));
    summary.metrics = ddx_obs::snapshot().diff(&metrics_before);
    summary
}

/// Runs the pipeline over (a sample of) the corpus' erroneous snapshots,
/// using every available core. Results are identical to
/// [`evaluate_corpus_seq`]: per-snapshot seeds derive from corpus index, not
/// scheduling order.
pub fn evaluate_corpus(corpus: &Corpus, cfg: &EvalConfig) -> EvalSummary {
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    evaluate_corpus_parallel(corpus, cfg, workers)
}

/// Single-threaded [`evaluate_corpus`], kept for determinism tests and
/// environments where spawning threads is undesirable.
pub fn evaluate_corpus_seq(corpus: &Corpus, cfg: &EvalConfig) -> EvalSummary {
    let metrics_before = ddx_obs::snapshot();
    let mut summary = summarize(
        corpus
            .erroneous_snapshots()
            .take(cfg.max_snapshots)
            .enumerate()
            .map(|(i, snapshot)| evaluate_snapshot(snapshot, cfg, i as u64)),
    );
    summary.metrics = ddx_obs::snapshot().diff(&metrics_before);
    summary
}

/// Aggregates per-snapshot outcomes into the Table 6 / Table 7 summary.
fn summarize<I: IntoIterator<Item = SnapshotEval>>(evals: I) -> EvalSummary {
    let mut s1 = Table6Row {
        label: "NZIC Only (S1)",
        ..Default::default()
    };
    let mut s2 = Table6Row {
        label: "Remaining (S2)",
        ..Default::default()
    };
    let mut histogram: std::collections::BTreeMap<InstructionKind, [u64; 6]> = Default::default();
    let mut histogram_overflow = 0u64;
    let mut max_iterations = 0usize;
    let mut typed_details = 0u64;
    let mut total_details = 0u64;

    for eval in evals {
        typed_details += eval.typed_details;
        total_details += eval.total_details;
        let row = if eval.s1 { &mut s1 } else { &mut s2 };
        row.snapshots += 1;
        if !eval.generated.is_empty() {
            row.ge_nonempty += 1;
        }
        if eval.replicated {
            row.replicated += 1;
            if eval
                .after_fix
                .as_ref()
                .map(|a| a.is_empty())
                .unwrap_or(false)
            {
                row.fixed += 1;
                max_iterations = max_iterations.max(eval.iterations);
            }
        }
        if !eval.s1 {
            for (iteration, kind) in &eval.instructions {
                let slot = histogram.entry(*kind).or_default();
                if *iteration >= 1 {
                    // Table 7 has six columns; later iterations are rare but
                    // must not vanish — clamp them into the last bucket and
                    // keep a count so the loss is visible.
                    let bucket = (*iteration).min(6);
                    slot[bucket - 1] += 1;
                    if *iteration > 6 {
                        histogram_overflow += 1;
                    }
                }
            }
        }
    }

    if histogram_overflow > 0 {
        eprintln!(
            "pipeline: {histogram_overflow} instruction(s) issued past iteration 6 \
             clamped into the last Table 7 bucket"
        );
    }

    EvalSummary {
        s1,
        s2,
        instruction_histogram: histogram.into_iter().collect(),
        histogram_overflow,
        max_iterations,
        typed_details,
        total_details,
        metrics: ddx_obs::MetricsSnapshot::default(),
    }
}
