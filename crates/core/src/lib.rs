//! # ddx — DNSSEC debugging, replication, and automated repair
//!
//! The facade crate of the workspace reproducing *"Decoding DNSSEC Errors
//! at Scale"* (IMC '25): re-exports every subsystem and provides the
//! end-to-end evaluation pipeline (paper Fig 7) that drives Tables 6 & 7.
//!
//! ## Quick start
//!
//! ```
//! use ddx::prelude::*;
//! use std::collections::BTreeSet;
//!
//! // Replicate a zone whose only KSK is revoked and referenced by a DS.
//! let request = ReplicationRequest {
//!     meta: ZoneMeta::default(),
//!     intended: BTreeSet::from([ErrorCode::DsReferencesRevokedKey]),
//! };
//! let mut rep = replicate(&request, 1_000_000, 42).unwrap();
//!
//! // Diagnose it the way DNSViz would…
//! let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
//! assert_eq!(report.status, SnapshotStatus::Sb);
//!
//! // …and let DFixer repair it.
//! let cfg = rep.probe.clone();
//! let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
//! assert!(run.fixed);
//! ```

pub mod pipeline;

pub use pipeline::{
    evaluate_corpus, evaluate_corpus_parallel, evaluate_corpus_seq, evaluate_snapshot, EvalConfig,
    EvalSummary, SnapshotEval, Table6Row,
};

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use crate::pipeline::{
        evaluate_corpus, evaluate_corpus_parallel, evaluate_corpus_seq, evaluate_snapshot,
        EvalConfig, EvalSummary,
    };
    pub use ddx_dataset::{generate, Corpus, CorpusConfig, Level, Snapshot};
    pub use ddx_dns::{name, Name, RData, RRset, Record, RrType, Zone};
    pub use ddx_dnssec::{Algorithm, DigestType, KeyPair, KeyRing, KeyRole, Nsec3Config};
    pub use ddx_dnsviz::{
        grok, grok_with_budget, probe, ErrorCode, GrokReport, ProbeConfig, SnapshotStatus,
        Subcategory, ValidationBudget,
    };
    pub use ddx_fixer::{
        run_fixer, run_naive, suggest, FixRun, FixerOptions, Instruction, InstructionKind,
        ServerFlavor,
    };
    pub use ddx_obs::MetricsSnapshot;
    pub use ddx_replicator::{
        replicate, replicate_attack, AttackFamily, Nsec3Meta, Replication, ReplicationRequest,
        ZoneMeta,
    };
    pub use ddx_server::{build_sandbox, Sandbox, Server, ServerId, Testbed, ZoneSpec};
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dataset::{generate, CorpusConfig};

    #[test]
    fn pipeline_small_sample() {
        let corpus = generate(&CorpusConfig {
            scale: 0.002,
            seed: 5,
        });
        let cfg = EvalConfig {
            max_snapshots: 40,
            ..Default::default()
        };
        let summary = evaluate_corpus(&corpus, &cfg);
        let total = summary.total();
        assert!(total.snapshots > 0);
        assert!(total.snapshots <= 40);
        // The bulk replicates and everything replicated gets fixed.
        assert!(total.rr() > 0.7, "rr {}", total.rr());
        assert!(total.fr() > 0.99, "fr {}", total.fr());
        // S1 replicates essentially always.
        if summary.s1.snapshots > 10 {
            assert!(summary.s1.rr() > 0.9, "s1 rr {}", summary.s1.rr());
        }
        assert!(summary.max_iterations <= 4);
        // Every addressed cause came out of grok with a structured (typed)
        // payload — nothing fell back to the free-form Note escape hatch.
        assert!(summary.total_details > 0);
        assert_eq!(summary.typed_details, summary.total_details);
    }

    #[test]
    fn parallel_evaluation_matches_sequential() {
        let corpus = generate(&CorpusConfig {
            scale: 0.002,
            seed: 9,
        });
        let cfg = EvalConfig {
            max_snapshots: 30,
            ..Default::default()
        };
        let seq = pipeline::evaluate_corpus_seq(&corpus, &cfg);
        let par = pipeline::evaluate_corpus_parallel(&corpus, &cfg, 4);
        assert_eq!(seq.s1.snapshots, par.s1.snapshots);
        assert_eq!(seq.s1.replicated, par.s1.replicated);
        assert_eq!(seq.s2.replicated, par.s2.replicated);
        assert_eq!(seq.s2.fixed, par.s2.fixed);
        assert_eq!(seq.instruction_histogram, par.instruction_histogram);
        assert_eq!(seq.histogram_overflow, par.histogram_overflow);
        assert_eq!(seq.max_iterations, par.max_iterations);
        assert_eq!(seq.typed_details, par.typed_details);
        assert_eq!(seq.total_details, par.total_details);
    }
}
