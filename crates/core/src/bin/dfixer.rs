//! `dfixer` — the DFixer command-line tool.
//!
//! Replicates a misconfiguration scenario in the local sandbox, diagnoses
//! it (probe + grok), and prints the root-cause remediation plan with
//! concrete commands — optionally auto-applying it and re-verifying, like
//! the paper's auto-apply mode (§4.3 step 4).
//!
//! ```text
//! dfixer --errors RrsigExpired,DsDigestInvalid [--nsec3] [--flavor bind|nsd|knot|pdns]
//!        [--auto] [--cds] [--json] [--seed N] [--metrics-out metrics.json]
//! dfixer --errors RrsigExpired --watch 10 [--auto]
//! dfixer --list-errors
//! ```
//!
//! `--watch N` enters a long-lived revalidation loop: up to `N` rounds of
//! *incremental* probe→grok through a generation-keyed memo, so each round
//! re-examines only the zones whose content changed since the previous one
//! (first round: full walk). With `--auto`, each round also applies one
//! DResolver plan, turning the loop into a delta-driven fixer; without it,
//! the loop just reports status and memo deltas per round.

use std::collections::BTreeSet;
use std::process::ExitCode;

use ddx::prelude::*;
use ddx_dnsviz::GrokMemo;
use ddx_fixer::{apply_plan, resolve, FixContext};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Args {
    errors: Vec<String>,
    nsec3: bool,
    flavor: ServerFlavor,
    auto: bool,
    cds: bool,
    json: bool,
    seed: u64,
    list: bool,
    metrics_out: Option<String>,
    /// Maximum incremental revalidation rounds (None = watch mode off).
    watch: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        errors: Vec::new(),
        nsec3: false,
        flavor: ServerFlavor::Bind,
        auto: false,
        cds: false,
        json: false,
        seed: 42,
        list: false,
        metrics_out: None,
        watch: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--errors" => {
                let v = it.next().ok_or("--errors needs a value")?;
                args.errors = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--nsec3" => args.nsec3 = true,
            "--flavor" => {
                let v = it.next().ok_or("--flavor needs a value")?;
                args.flavor = match v.to_ascii_lowercase().as_str() {
                    "bind" => ServerFlavor::Bind,
                    "nsd" => ServerFlavor::Nsd,
                    "knot" => ServerFlavor::Knot,
                    "pdns" | "powerdns" => ServerFlavor::PowerDns,
                    other => return Err(format!("unknown flavor {other}")),
                };
            }
            "--auto" => args.auto = true,
            "--cds" => args.cds = true,
            "--json" => args.json = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--list-errors" => args.list = true,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "--watch" => {
                let n: usize = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--watch needs a round count")?;
                if n == 0 {
                    return Err("--watch needs at least 1 round".into());
                }
                args.watch = Some(n);
            }
            "-h" | "--help" => {
                println!(
                    "dfixer --errors <Code,...> [--nsec3] [--flavor bind|nsd|knot|pdns] [--auto] [--cds] [--json] [--seed N] [--watch N] [--metrics-out <path>]\n       dfixer --list-errors"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

/// Dumps the global metrics snapshot as JSON to `path` and prints the
/// human-readable run report to stdout.
fn dump_metrics(path: &str) {
    let snap = ddx_obs::snapshot();
    match std::fs::write(path, snap.to_json()) {
        Ok(()) => {
            println!("\n== metrics ({path}) ==");
            print!("{}", snap.render_report());
        }
        Err(e) => eprintln!("warning: could not write metrics to {path}: {e}"),
    }
}

fn lookup_code(name: &str) -> Option<ErrorCode> {
    ErrorCode::ALL
        .iter()
        .copied()
        .find(|c| c.ident().eq_ignore_ascii_case(name))
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for c in ErrorCode::ALL {
            println!(
                "{:<32} {:<36} {} {}",
                c.ident(),
                c.subcategory().label(),
                if c.is_critical() {
                    "critical"
                } else {
                    "tolerated"
                },
                if c.replicable() { "" } else { "(unreplicable)" }
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut intended = BTreeSet::new();
    for name in &args.errors {
        match lookup_code(name) {
            Some(c) => {
                intended.insert(c);
            }
            None => {
                eprintln!("error: unknown error code {name} (try --list-errors)");
                return ExitCode::FAILURE;
            }
        }
    }

    let mut meta = ZoneMeta::default();
    if args.nsec3 {
        meta.nsec3 = Some(Nsec3Meta {
            iterations: 0,
            salt_len: 0,
            opt_out: false,
        });
    }
    let request = ReplicationRequest {
        meta,
        intended: intended.clone(),
    };
    let mut rep = match replicate(&request, 1_000_000, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replication failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (code, reason) in &rep.skipped {
        eprintln!("warning: could not inject {code}: {reason}");
    }

    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("== diagnosis ==");
        print!("{}", report.render_text());
    }

    let (_, resolution, commands) = suggest(&rep.sandbox, &rep.probe, args.flavor);
    if !args.json {
        println!("\n== plan (root cause: {:?}) ==", resolution.addressed);
        for (i, instr) in resolution.plan.iter().enumerate() {
            println!("  ({}) {}", i + 1, instr.describe());
        }
        println!("\n== commands ({:?}) ==", args.flavor);
        for c in &commands {
            println!("  {c}");
        }
    }

    let mut exit = ExitCode::SUCCESS;
    if let Some(rounds) = args.watch {
        // Long-lived incremental revalidation: one memo across all rounds;
        // after the first full walk, each round re-probes only what changed.
        let mut memo = GrokMemo::new();
        let mut rng = StdRng::seed_from_u64(args.seed);
        let mut now = rep.probe.time;
        let mut clean = false;
        println!("\n== watch ({rounds} round max) ==");
        for round in 1..=rounds {
            let mut pcfg = rep.probe.clone();
            pcfg.time = now;
            let before = memo.stats();
            let report = memo.probe_grok(&rep.sandbox.testbed, &rep.sandbox.testbed, &pcfg);
            let after = memo.stats();
            println!(
                "round {round}: status={} errors={} [zones: {} reused, {} probed, {} invalidated]",
                report.status,
                report.codes().len(),
                after.hits - before.hits,
                after.misses - before.misses,
                after.invalidations - before.invalidations,
            );
            if report.clean() {
                clean = true;
                println!("watch: clean after {round} round(s)");
                break;
            }
            if !args.auto {
                continue;
            }
            // Apply one DResolver plan per round; the next round's
            // incremental walk picks up exactly the zones it touched.
            let mut ctx = FixContext::from_sandbox(&rep.sandbox, &report, now);
            ctx.use_cds = args.cds;
            let resolution = resolve(&report, &ctx);
            if resolution.plan.is_empty() {
                println!(
                    "watch: no applicable fix (root cause {:?}); stopping",
                    resolution.addressed
                );
                break;
            }
            for instr in &resolution.plan {
                println!("  apply: {}", instr.describe());
            }
            now = apply_plan(&mut rep.sandbox, &resolution.plan, now, &mut rng);
        }
        if args.auto && !clean {
            exit = ExitCode::FAILURE;
        }
    } else if args.auto {
        let cfg = rep.probe.clone();
        let opts = FixerOptions {
            flavor: args.flavor,
            use_cds: args.cds,
            seed: args.seed,
            ..Default::default()
        };
        let run = run_fixer(&mut rep.sandbox, &cfg, &opts);
        println!("\n== auto-apply ==");
        for it in &run.iterations {
            println!(
                "iteration {}: status={} errors={} addressed={:?}",
                it.iteration,
                it.status_before,
                it.errors_before.len(),
                it.addressed
            );
        }
        println!(
            "result: fixed={} final status={} residual={:?}",
            run.fixed, run.final_status, run.final_errors
        );
        if !run.fixed {
            exit = ExitCode::FAILURE;
        }
    }
    if let Some(path) = &args.metrics_out {
        dump_metrics(path);
    }
    exit
}
