//! `zreplicator` — the ZReplicator command-line tool.
//!
//! Builds the local sandbox hierarchy, injects the requested
//! misconfigurations, verifies them with probe/grok, and (optionally) dumps
//! every server's zone as a master file so the scenario can be inspected or
//! loaded elsewhere.
//!
//! ```text
//! zreplicator --errors NsecProofMissing [--nsec3] [--seed N]
//!             [--dump-dir DIR] [--json] [--metrics-out metrics.json]
//! ```

use std::collections::BTreeSet;
use std::process::ExitCode;

use ddx::prelude::*;
use ddx_dns::zone_to_master;

struct Args {
    errors: Vec<String>,
    nsec3: bool,
    seed: u64,
    dump_dir: Option<String>,
    json: bool,
    snapshot_file: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        errors: Vec::new(),
        nsec3: false,
        seed: 42,
        dump_dir: None,
        json: false,
        snapshot_file: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--errors" => {
                let v = it.next().ok_or("--errors needs a value")?;
                args.errors = v.split(',').map(|s| s.trim().to_string()).collect();
            }
            "--nsec3" => args.nsec3 = true,
            "--seed" => {
                args.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a number")?;
            }
            "--dump-dir" => args.dump_dir = it.next(),
            "--snapshot-file" => args.snapshot_file = it.next(),
            "--json" => args.json = true,
            "--metrics-out" => {
                args.metrics_out = Some(it.next().ok_or("--metrics-out needs a path")?);
            }
            "-h" | "--help" => {
                println!(
                    "zreplicator --errors <Code,...> [--nsec3] [--seed N] [--dump-dir DIR] [--json] [--metrics-out <path>]\n            zreplicator --snapshot-file FILE.json [--seed N] [--dump-dir DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // Either a serialized corpus snapshot (the Fig 7 "Select JSON
    // snapshot" path) or error codes from the command line.
    let (meta, intended) = if let Some(file) = &args.snapshot_file {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("error: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let snapshot: Snapshot = match serde_json::from_str(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {file} is not a snapshot JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        (snapshot.meta.clone(), snapshot.errors.clone())
    } else {
        let mut intended = BTreeSet::new();
        for name in &args.errors {
            match ErrorCode::ALL
                .iter()
                .copied()
                .find(|c| c.ident().eq_ignore_ascii_case(name))
            {
                Some(c) => {
                    intended.insert(c);
                }
                None => {
                    eprintln!("error: unknown error code {name}");
                    return ExitCode::FAILURE;
                }
            }
        }
        let mut meta = ZoneMeta::default();
        if args.nsec3 {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        (meta, intended)
    };
    let request = ReplicationRequest {
        meta,
        intended: intended.clone(),
    };
    let rep = match replicate(&request, 1_000_000, args.seed) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replication failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    for (code, reason) in &rep.skipped {
        eprintln!("warning: skipped {code}: {reason}");
    }
    for sub in &rep.substitutions {
        eprintln!(
            "note: algorithm {} substituted with {}",
            sub.observed, sub.generated
        );
    }

    // Verify the replication (IE ⊆ GE).
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    let generated = report.codes();
    let replicated = !intended.is_empty() && intended.is_subset(&generated);
    if args.json {
        println!("{}", report.to_json());
    } else {
        println!("== replication ==");
        println!("intended : {intended:?}");
        println!("generated: {generated:?}");
        println!(
            "IE ⊆ GE  : {}",
            if intended.is_empty() {
                "n/a (clean zone requested)".to_string()
            } else {
                replicated.to_string()
            }
        );
        println!("status   : {}", report.status);
    }

    if let Some(dir) = &args.dump_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {dir}: {e}");
            return ExitCode::FAILURE;
        }
        for zone_info in &rep.sandbox.zones {
            for sid in &zone_info.servers {
                let Some(zone) = rep
                    .sandbox
                    .testbed
                    .server(sid)
                    .and_then(|s| s.zone(&zone_info.apex))
                else {
                    continue;
                };
                let file = format!(
                    "{dir}/{}",
                    format!("{}-{}.zone", zone_info.apex, sid).replace(['/', '#'], "_")
                );
                if let Err(e) = std::fs::write(&file, zone_to_master(zone)) {
                    eprintln!("error: cannot write {file}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote {file}");
            }
        }
    }

    if let Some(path) = &args.metrics_out {
        let snap = ddx_obs::snapshot();
        match std::fs::write(path, snap.to_json()) {
            Ok(()) => {
                println!("\n== metrics ({path}) ==");
                print!("{}", snap.render_report());
            }
            Err(e) => eprintln!("warning: could not write metrics to {path}: {e}"),
        }
    }

    if !intended.is_empty() && !replicated {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
