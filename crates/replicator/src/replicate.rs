//! The top-level ZReplicator API: take a snapshot's intended errors and
//! zone meta-parameters, build the sandbox hierarchy (`a.com` →
//! `par.a.com` → `inv-chd.par.a.com`), and inject each error (paper §4.5).

use std::collections::BTreeSet;

use ddx_dns::{name, Name, RrType};
use ddx_dnsviz::{ErrorCode, ErrorDetail, ProbeConfig};
use ddx_server::{build_sandbox, Sandbox, ZoneSpec};

use crate::inject::{inject, injection_phase, SkipReason};
use crate::meta::{plan_digests, plan_keys, MetaError, Substitution, ZoneMeta};

/// What to replicate: the errors a snapshot exhibited plus the zone's
/// observed parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicationRequest {
    pub meta: ZoneMeta,
    pub intended: BTreeSet<ErrorCode>,
}

/// A live replication: the sandbox plus bookkeeping about what could and
/// could not be recreated.
pub struct Replication {
    pub sandbox: Sandbox,
    /// Errors whose injectors ran, each with the typed detail payload the
    /// injector intended grok to reproduce.
    pub injected: Vec<(ErrorCode, ErrorDetail)>,
    /// Errors that could not be recreated, with reasons.
    pub skipped: Vec<(ErrorCode, SkipReason)>,
    /// Algorithm substitutions applied (paper §5.5.1).
    pub substitutions: Vec<Substitution>,
    /// The probe configuration matching this sandbox.
    pub probe: ProbeConfig,
    pub now: u32,
}

impl Replication {
    /// The leaf (target) zone apex: `inv-chd.par.a.com`.
    pub fn target_zone(&self) -> Name {
        self.sandbox.leaf().apex.clone()
    }
}

/// The fixed sandbox layout from the paper.
pub fn anchor_apex() -> Name {
    name("a.com")
}

pub fn parent_apex() -> Name {
    name("par.a.com")
}

pub fn target_apex() -> Name {
    name("inv-chd.par.a.com")
}

/// Builds the probe configuration for a sandbox rooted at `a.com`.
pub fn probe_config_for(sandbox: &Sandbox, now: u32) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sandbox.anchor().apex.clone(),
        anchor_servers: sandbox.anchor().servers.clone(),
        query_domain: sandbox.leaf().apex.child("www").expect("label fits"),
        target_types: vec![RrType::A],
        time: now,
        retry: ddx_dnsviz::RetryPolicy::default(),
        hints: sandbox
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

/// Replicates a snapshot locally.
///
/// The sandbox starts fully valid (mirroring the meta parameters, with
/// algorithm substitution where needed) and then each intended error is
/// injected in a stable phase order so injections do not undo each other.
pub fn replicate(req: &ReplicationRequest, now: u32, seed: u64) -> Result<Replication, MetaError> {
    let plan = plan_keys(&req.meta)?;
    let mut leaf = ZoneSpec {
        apex: target_apex(),
        server_count: 2,
        keys: plan.keys.clone(),
        nsec3: req.meta.nsec3.as_ref().map(|m| m.to_config()),
        ds_digests: plan_digests(&req.meta),
        publish_ds: true,
        wildcard: false,
    };
    // NSEC3-only errors demand an NSEC3 zone even if the meta was silent
    // (dataset metas are normally consistent; this is a safety net).
    let wants_nsec3 = req
        .intended
        .iter()
        .any(|c| matches!(c.category(), ddx_dnsviz::Category::Nsec3Only));
    if wants_nsec3 && leaf.nsec3.is_none() {
        leaf.nsec3 = Some(ddx_dnssec::Nsec3Config::default());
    }

    let mut sandbox = build_sandbox(
        &[
            ZoneSpec::conventional(anchor_apex()),
            ZoneSpec::conventional(parent_apex()),
            leaf,
        ],
        now,
        seed,
    );

    let mut ordered: Vec<ErrorCode> = req.intended.iter().copied().collect();
    ordered.sort_by_key(|c| (injection_phase(*c), *c));

    let mut injected = Vec::new();
    let mut skipped = Vec::new();
    for code in ordered {
        match inject(&mut sandbox, code, now) {
            Ok(detail) => injected.push((code, detail)),
            Err(reason) => skipped.push((code, reason)),
        }
    }

    let probe = probe_config_for(&sandbox, now);
    Ok(Replication {
        sandbox,
        injected,
        skipped,
        substitutions: plan.substitutions,
        probe,
        now,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::Nsec3Meta;
    use ddx_dnsviz::{grok, probe, SnapshotStatus};

    const NOW: u32 = 1_000_000;

    fn request(codes: &[ErrorCode], nsec3: bool) -> ReplicationRequest {
        let mut meta = ZoneMeta::default();
        if nsec3 {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        ReplicationRequest {
            meta,
            intended: codes.iter().copied().collect(),
        }
    }

    fn run(req: &ReplicationRequest) -> (Replication, ddx_dnsviz::GrokReport) {
        let rep = replicate(req, NOW, 0xBEEF).expect("replication builds");
        let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
        (rep, report)
    }

    /// Whether `code` needs an NSEC3 leaf to be injectable.
    fn needs_nsec3(code: ErrorCode) -> bool {
        use ErrorCode::*;
        matches!(
            code,
            Nsec3ProofMissing
                | Nsec3BitmapAssertsType
                | Nsec3CoverageBroken
                | Nsec3MissingWildcardProof
                | Nsec3ParamMismatch
                | Nsec3IterationsNonzero
                | Nsec3OptOutViolation
                | Nsec3UnsupportedAlgorithm
                | Nsec3NoClosestEncloser
        )
    }

    #[test]
    fn clean_replication_is_valid() {
        let (_, report) = run(&request(&[], false));
        assert_eq!(
            report.status,
            SnapshotStatus::Sv,
            "errors: {:?}",
            report.codes()
        );
        let (_, report) = run(&request(&[], true));
        assert_eq!(
            report.status,
            SnapshotStatus::Sv,
            "errors: {:?}",
            report.codes()
        );
    }

    #[test]
    fn every_replicable_code_is_reproduced_solo() {
        let mut failures = Vec::new();
        for code in ErrorCode::ALL {
            if !code.replicable() {
                continue;
            }
            let req = request(&[code], needs_nsec3(code));
            let (rep, report) = run(&req);
            if !rep.skipped.is_empty() {
                failures.push(format!("{code}: skipped {:?}", rep.skipped));
                continue;
            }
            let generated = report.codes();
            if !generated.contains(&code) {
                failures.push(format!(
                    "{code}: not generated; got {:?} (status {})",
                    generated, report.status
                ));
            }
        }
        assert!(
            failures.is_empty(),
            "replication gaps:\n{}",
            failures.join("\n")
        );
    }

    #[test]
    fn unreplicable_codes_are_skipped() {
        for code in ErrorCode::ALL.iter().filter(|c| !c.replicable()) {
            let req = request(&[*code], needs_nsec3(*code));
            let rep = replicate(&req, NOW, 1).unwrap();
            assert!(rep.injected.is_empty());
            assert_eq!(rep.skipped.len(), 1);
            assert_eq!(rep.skipped[0].1, crate::inject::SkipReason::Unreplicable);
        }
    }

    #[test]
    fn multi_error_combination_reproduces_all() {
        // NZIC + extraneous DS: the combination the paper uses to motivate
        // multi-iteration fixes (§5.4).
        let req = request(
            &[
                ErrorCode::Nsec3IterationsNonzero,
                ErrorCode::DsMissingKeyForAlgorithm,
            ],
            true,
        );
        let (rep, report) = run(&req);
        assert!(rep.skipped.is_empty());
        let generated = report.codes();
        for code in &req.intended {
            assert!(generated.contains(code), "missing {code}: {generated:?}");
        }
    }

    #[test]
    fn deprecated_algorithm_meta_substituted_and_valid() {
        let mut meta = ZoneMeta::default();
        for k in &mut meta.keys {
            k.algorithm = 6; // DSA-NSEC3-SHA1
            k.bits = 1024;
        }
        let req = ReplicationRequest {
            meta,
            intended: Default::default(),
        };
        let (rep, report) = run(&req);
        assert_eq!(rep.substitutions.len(), 1);
        assert_eq!(
            report.status,
            SnapshotStatus::Sv,
            "errors: {:?}",
            report.codes()
        );
    }

    #[test]
    fn nsec3_meta_parameters_mirrored() {
        let meta = ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 15,
                salt_len: 4,
                opt_out: false,
            }),
            ..Default::default()
        };
        let req = ReplicationRequest {
            meta,
            intended: [ErrorCode::Nsec3IterationsNonzero].into_iter().collect(),
        };
        let (_, report) = run(&req);
        assert!(report.codes().contains(&ErrorCode::Nsec3IterationsNonzero));
        assert_eq!(report.status, SnapshotStatus::Svm);
    }
}
