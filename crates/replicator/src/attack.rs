//! KeyTrap-class adversarial zone generator: injectors that make the
//! sandbox *algorithmically expensive* to validate rather than merely
//! broken. Each family models one published attack shape (CVE-2023-50387
//! and friends): SigJam floods one RRset with colliding-tag signatures,
//! LockCram crams the DNSKEY RRset with a keys×sigs cross product,
//! high-iteration NSEC3 makes every denial proof cost thousands of hash
//! rounds, and oversized RRsets bloat both DNSKEY and RRSIG sets at once.
//!
//! Like the error injectors in [`crate::inject`], every attack returns the
//! `(ErrorCode, ErrorDetail)` payload grok is expected to produce — always
//! [`ErrorCode::ValidationBudgetExceeded`] here, with the
//! [`ErrorDetail::BudgetExceeded`] counter naming the budget the family is
//! built to exhaust.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ddx_dns::{Name, RData, Record, RrType};
use ddx_dnssec::{sigs_covering, Algorithm, KeyPair, KeyRole, SignOptions, DNSKEY_TTL};
use ddx_dnsviz::{BudgetCounter, ErrorCode, ErrorDetail, ValidationBudget};
use ddx_server::Sandbox;

use crate::inject::SkipReason;
use crate::meta::{MetaError, Nsec3Meta, ZoneMeta};
use crate::replicate::{replicate, Replication, ReplicationRequest};

/// Colliding-tag signature copies SigJam plants on one RRset. Comfortably
/// above the default per-zone signature budget (512) so a single server's
/// material trips it.
pub const SIGJAM_SIG_COPIES: usize = 600;

/// Foreign keys LockCram publishes, each contributing one more DNSKEY
/// record *and* one more RRSIG over the (ever larger) DNSKEY RRset.
pub const LOCKCRAM_KEYS: usize = 560;

/// NSEC3 iteration count of the high-iteration family — far beyond the
/// RFC 9276 guidance of 0, and high enough that a single denial proof's
/// pre-flight estimate exceeds the default hash budget (16 384 rounds).
pub const NSEC3_ATTACK_ITERATIONS: u16 = 2_500;

/// Empty-non-terminal depth of the high-iteration family's decoy name:
/// each extra label is one more closest-encloser candidate to hash.
pub const NSEC3_ATTACK_ENT_DEPTH: usize = 8;

/// Foreign keys the oversized-RRset family adds to the DNSKEY RRset.
pub const OVERSIZED_KEYS: usize = 64;

/// Tampered signature copies the oversized-RRset family plants on the
/// apex SOA RRset.
pub const OVERSIZED_SIG_COPIES: usize = 560;

/// The four adversarial zone shapes of the attack corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AttackFamily {
    /// Many invalid RRSIGs with the real key's tag on one RRset: every
    /// copy forces a full verification attempt before rejection.
    SigJam,
    /// Many foreign DNSKEYs, each signing the bloated DNSKEY RRset — the
    /// keys×signatures cross product.
    LockCram,
    /// NSEC3 with thousands of iterations plus a deep empty-non-terminal
    /// chain: every denial proof costs `(iterations+1)` hash rounds per
    /// closest-encloser candidate.
    Nsec3Iterations,
    /// Oversized DNSKEY and RRSIG RRsets together: RRset bloat without a
    /// single colliding pair being load-bearing.
    OversizedRrset,
}

impl AttackFamily {
    pub const ALL: [AttackFamily; 4] = [
        AttackFamily::SigJam,
        AttackFamily::LockCram,
        AttackFamily::Nsec3Iterations,
        AttackFamily::OversizedRrset,
    ];

    /// Stable lowercase label (metric labels, CHAOS_VARIANT-style env
    /// selection in tests).
    pub fn label(&self) -> &'static str {
        match self {
            AttackFamily::SigJam => "sigjam",
            AttackFamily::LockCram => "lockcram",
            AttackFamily::Nsec3Iterations => "nsec3-iterations",
            AttackFamily::OversizedRrset => "oversized-rrset",
        }
    }

    /// Whether the family needs an NSEC3 leaf zone.
    pub fn wants_nsec3(&self) -> bool {
        matches!(self, AttackFamily::LockCram | AttackFamily::Nsec3Iterations)
    }

    /// The budget counter the family is built to exhaust.
    pub fn counter(&self) -> BudgetCounter {
        match self {
            AttackFamily::Nsec3Iterations => BudgetCounter::Nsec3Hashes,
            _ => BudgetCounter::SigVerifications,
        }
    }
}

impl std::fmt::Display for AttackFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

fn attack_window(now: u32) -> SignOptions {
    SignOptions {
        inception: now.saturating_sub(3600),
        expiration: now + 30 * 86_400,
    }
}

/// The intended grok finding for a family. `used` is zero: the actual
/// count depends on how much evidence grok collects before tripping, so
/// the contract is the code, the counter, and the (default) cap — tests
/// compare those, never the runtime tally.
fn intended(counter: BudgetCounter) -> (ErrorCode, ErrorDetail) {
    let budget = ValidationBudget::default();
    let cap = match counter {
        BudgetCounter::SigVerifications => budget.max_sig_verifications,
        BudgetCounter::Nsec3Hashes => budget.max_nsec3_hashes,
    };
    (
        ErrorCode::ValidationBudgetExceeded,
        ErrorDetail::BudgetExceeded {
            counter,
            used: 0,
            cap,
        },
    )
}

/// Plants `copies` distinct invalid duplicates of the first RRSIG covering
/// (`name`, `rtype`) — same key tag, same window, garbage signature bytes.
/// The first two signature bytes carry the copy index so every duplicate
/// has distinct RDATA and survives RRset deduplication.
fn flood_sigs(zone: &mut ddx_dns::Zone, name: &Name, rtype: RrType, copies: usize) {
    let sigs = sigs_covering(zone, name, rtype);
    let Some(orig) = sigs.first().cloned() else {
        return;
    };
    for i in 0..copies {
        let mut sig = orig.clone();
        if sig.signature.len() >= 2 {
            sig.signature[0] = i as u8;
            sig.signature[1] = (i >> 8) as u8;
        }
        zone.add(Record::new(name.clone(), 300, RData::Rrsig(sig)));
    }
}

/// Injects one attack family into the sandbox's leaf zone.
///
/// Deterministic: attack key material is generated from fixed seeds, so two
/// sandboxes built from the same seed stay byte-identical after the same
/// injection.
pub fn inject_attack(
    sb: &mut Sandbox,
    family: AttackFamily,
    now: u32,
) -> Result<(ErrorCode, ErrorDetail), SkipReason> {
    let apex = sb.leaf().apex.clone();
    let www = apex.child("www").expect("label fits");
    match family {
        AttackFamily::SigJam => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                flood_sigs(zone, &www, RrType::A, SIGJAM_SIG_COPIES);
            });
            Ok(intended(BudgetCounter::SigVerifications))
        }
        AttackFamily::LockCram => {
            let mut rng = StdRng::seed_from_u64(0xA7_AC_01);
            let keys: Vec<KeyPair> = (0..LOCKCRAM_KEYS)
                .map(|_| {
                    KeyPair::generate(
                        &mut rng,
                        apex.clone(),
                        Algorithm::EcdsaP256Sha256,
                        256,
                        KeyRole::Zsk,
                        now,
                    )
                })
                .collect();
            let opts = attack_window(now);
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                for k in &keys {
                    zone.add(Record::new(
                        apex.clone(),
                        DNSKEY_TTL,
                        RData::Dnskey(k.dnskey.clone()),
                    ));
                }
                // Every foreign key signs the final bloated RRset: each
                // signature actually verifies, so the zone is "valid" — it
                // just demands quadratic-shaped work to prove it.
                if let Some(set) = zone.get(&apex, RrType::Dnskey).cloned() {
                    for k in &keys {
                        let sig = ddx_dnssec::sign_rrset(&set, k, opts);
                        zone.add(Record::new(apex.clone(), set.ttl, RData::Rrsig(sig)));
                    }
                }
            });
            Ok(intended(BudgetCounter::SigVerifications))
        }
        AttackFamily::Nsec3Iterations => {
            {
                let z = sb.zone_mut(&apex).ok_or(SkipReason::MissingKeyMaterial)?;
                let Some(n3) = &mut z.spec.nsec3 else {
                    return Err(SkipReason::DenialModeMismatch);
                };
                n3.iterations = NSEC3_ATTACK_ITERATIONS;
                z.signer_config = ddx_dnssec::SignerConfig::nsec3_at(
                    now,
                    z.spec.nsec3.clone().expect("checked above"),
                );
            }
            // A deep empty-non-terminal chain: the decoy leaf hangs
            // NSEC3_ATTACK_ENT_DEPTH labels below the apex, so a
            // closest-encloser search has that many candidates to hash —
            // each at NSEC3_ATTACK_ITERATIONS+1 rounds.
            let mut deep = apex.clone();
            for i in 0..NSEC3_ATTACK_ENT_DEPTH {
                deep = deep.child(&format!("e{i}")).expect("label fits");
            }
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    deep.clone(),
                    300,
                    RData::A(std::net::Ipv4Addr::new(198, 51, 100, 66)),
                ));
            });
            sb.resign_zone(&apex, now)
                .map_err(|_| SkipReason::MissingKeyMaterial)?;
            Ok(intended(BudgetCounter::Nsec3Hashes))
        }
        AttackFamily::OversizedRrset => {
            let mut rng = StdRng::seed_from_u64(0xA7_AC_02);
            let keys: Vec<KeyPair> = (0..OVERSIZED_KEYS)
                .map(|_| {
                    KeyPair::generate(
                        &mut rng,
                        apex.clone(),
                        Algorithm::EcdsaP256Sha256,
                        256,
                        KeyRole::Zsk,
                        now,
                    )
                })
                .collect();
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                for k in &keys {
                    zone.add(Record::new(
                        apex.clone(),
                        DNSKEY_TTL,
                        RData::Dnskey(k.dnskey.clone()),
                    ));
                }
                flood_sigs(zone, &apex, RrType::Soa, OVERSIZED_SIG_COPIES);
            });
            Ok(intended(BudgetCounter::SigVerifications))
        }
    }
}

/// Builds a fresh three-zone sandbox and injects one attack family into
/// its leaf — the attack-corpus analogue of [`replicate`]. The returned
/// [`Replication`] carries the intended `(code, detail)` in `injected`.
pub fn replicate_attack(
    family: AttackFamily,
    now: u32,
    seed: u64,
) -> Result<Replication, MetaError> {
    let mut meta = ZoneMeta::default();
    if family.wants_nsec3() {
        meta.nsec3 = Some(Nsec3Meta {
            iterations: 0,
            salt_len: 0,
            opt_out: false,
        });
    }
    let req = ReplicationRequest {
        meta,
        intended: Default::default(),
    };
    let mut rep = replicate(&req, now, seed)?;
    match inject_attack(&mut rep.sandbox, family, now) {
        Ok(pair) => rep.injected.push(pair),
        Err(reason) => rep
            .skipped
            .push((ErrorCode::ValidationBudgetExceeded, reason)),
    }
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ddx_dnsviz::{grok, probe, SnapshotStatus};

    const NOW: u32 = 1_000_000;

    #[test]
    fn every_family_trips_the_default_budget() {
        for family in AttackFamily::ALL {
            let rep = replicate_attack(family, NOW, 0xA77C).expect("attack builds");
            assert!(
                rep.skipped.is_empty(),
                "{family}: skipped {:?}",
                rep.skipped
            );
            let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
            let codes = report.codes();
            assert!(
                codes.contains(&ErrorCode::ValidationBudgetExceeded),
                "{family}: no budget trip; got {codes:?} (status {})",
                report.status
            );
            assert_eq!(report.status, SnapshotStatus::Sb, "{family}");
            // The typed detail names the counter the family targets.
            let detail = report
                .errors()
                .find(|e| e.code == ErrorCode::ValidationBudgetExceeded)
                .map(|e| e.detail.clone())
                .expect("error carries detail");
            match detail {
                ErrorDetail::BudgetExceeded { counter, used, cap } => {
                    assert_eq!(counter, family.counter(), "{family}");
                    assert!(used > cap, "{family}: used {used} <= cap {cap}");
                }
                other => panic!("{family}: unexpected detail {other:?}"),
            }
        }
    }

    #[test]
    fn unlimited_budget_does_not_trip() {
        use ddx_dnsviz::grok_with_budget;
        let rep = replicate_attack(AttackFamily::SigJam, NOW, 0xA77C).expect("attack builds");
        let report = grok_with_budget(
            &probe(&rep.sandbox.testbed, &rep.probe),
            &ValidationBudget::unlimited(),
        );
        assert!(
            !report
                .codes()
                .contains(&ErrorCode::ValidationBudgetExceeded),
            "unlimited budget must never trip: {:?}",
            report.codes()
        );
    }

    #[test]
    fn attack_injection_is_deterministic() {
        let a = replicate_attack(AttackFamily::LockCram, NOW, 7).expect("attack builds");
        let b = replicate_attack(AttackFamily::LockCram, NOW, 7).expect("attack builds");
        assert_eq!(
            a.sandbox.state_fingerprint(),
            b.sandbox.state_fingerprint(),
            "same seed must build identical attack sandboxes"
        );
    }
}
