//! Error injectors: one per replicable [`ErrorCode`], each performing the
//! surgical zone-file tampering (paper §4.5 step 3) that makes the sandbox
//! exhibit exactly that misconfiguration — expired-but-cryptographically-
//! valid signatures, stale DS records, divergent server copies, broken
//! denial chains, and so on.

use rand::rngs::StdRng;
use rand::SeedableRng;

use ddx_dns::{base32, Name, RData, Record, RrType};
use ddx_dnssec::{
    make_ds, nsec3_hash, resign_rrset, sigs_covering, Algorithm, DigestType, KeyPair, KeyRole,
    SignOptions, VerifyError, DNSKEY_TTL,
};
use ddx_dnsviz::{AlgorithmScope, DsProblem, ErrorCode, ErrorDetail};
use ddx_server::Sandbox;

/// Why an intended error could not be injected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SkipReason {
    /// The code is one of the paper's unreplicable anomalies (§5.5.1).
    Unreplicable,
    /// The code needs an NSEC zone but the meta demanded NSEC3 (or vice
    /// versa).
    DenialModeMismatch,
    /// The sandbox lacks the key material the injection requires.
    MissingKeyMaterial,
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::Unreplicable => write!(f, "unreplicable in a local sandbox"),
            SkipReason::DenialModeMismatch => write!(f, "requires the other denial mechanism"),
            SkipReason::MissingKeyMaterial => write!(f, "sandbox lacks required key material"),
        }
    }
}

/// A stable ordering so that multi-error injections do not stomp each
/// other: key-set surgery first, then DS manipulation, then signature
/// tampering, then denial-chain tampering.
pub fn injection_phase(code: ErrorCode) -> u8 {
    use ErrorCode::*;
    match code {
        // Whole-zone re-signs (parameter changes) must come before any
        // surgical tampering they would otherwise erase.
        Nsec3IterationsNonzero => 0,
        // Key-set surgery (may re-sign the DNSKEY RRset).
        RevokedKeyInUse
        | DsReferencesRevokedKey
        | DnskeyRevokedNoOtherSep
        | KeyLengthTooShort
        | DnskeyAlgorithmWithoutRrsig
        | RrsigAlgorithmWithoutDnskey
        | DsAlgorithmWithoutRrsig => 1,
        // Parent-side DS manipulation.
        DsMissingKeyForAlgorithm
        | NoSepForDsAlgorithm
        | DnskeyMissingForDs
        | NoSecureEntryPoint
        | DsDigestInvalid
        | DsAlgorithmMismatch
        | DsUnknownDigestType => 2,
        // Per-server divergence.
        DnskeyMissingFromServers | DnskeyInconsistentRrset | RrsigMissingFromServers => 3,
        // Signature tampering.
        RrsigMissing
        | RrsigMissingForDnskey
        | RrsigExpired
        | RrsigInvalid
        | RrsigInvalidRdata
        | RrsigUnknownKeyTag
        | RrsigSignerMismatch
        | RrsigNotYetValid
        | RrsigLabelsExceedOwner
        | RrsigBadLength
        | OriginalTtlExceeded
        | TtlBeyondSignatureExpiry => 4,
        // Denial-chain tampering last.
        _ => 5,
    }
}

fn zsk(sb: &Sandbox, apex: &Name, now: u32) -> Option<KeyPair> {
    let ring = &sb.zone(apex)?.ring;
    ring.active(KeyRole::Zsk, now)
        .first()
        .or(ring.active(KeyRole::Ksk, now).first())
        .map(|k| (*k).clone())
}

fn ksk(sb: &Sandbox, apex: &Name, now: u32) -> Option<KeyPair> {
    let ring = &sb.zone(apex)?.ring;
    ring.active(KeyRole::Ksk, now)
        .first()
        .or(ring.active(KeyRole::Zsk, now).first())
        .map(|k| (*k).clone())
}

fn window(now: u32) -> SignOptions {
    SignOptions {
        inception: now.saturating_sub(3600),
        expiration: now + 30 * 86_400,
    }
}

/// Re-signs the DNSKEY RRset at the leaf apex after key-set surgery.
fn resign_dnskey(sb: &mut Sandbox, apex: &Name, now: u32) {
    let Some(signer) = ksk(sb, apex, now) else {
        return;
    };
    let opts = window(now);
    sb.testbed.mutate_zone_everywhere(apex, |zone| {
        resign_rrset(zone, apex, RrType::Dnskey, &signer, opts);
    });
}

/// An unpublished throwaway key of the given algorithm for this zone.
fn foreign_key(apex: &Name, algorithm: Algorithm, role: KeyRole, now: u32, seed: u64) -> KeyPair {
    KeyPair::generate(
        &mut StdRng::seed_from_u64(seed),
        apex.clone(),
        algorithm,
        algorithm.default_key_bits(),
        role,
        now,
    )
}

/// The algorithm of the leaf's primary KSK (used to pick a *different* one).
fn other_algorithm(sb: &Sandbox, apex: &Name, now: u32) -> Algorithm {
    let used: Vec<u8> = sb
        .zone(apex)
        .map(|z| z.ring.algorithms(now))
        .unwrap_or_default();
    [
        Algorithm::RsaSha256,
        Algorithm::EcdsaP256Sha256,
        Algorithm::RsaSha512,
        Algorithm::Ed25519,
    ]
    .into_iter()
    .find(|a| !used.contains(&a.code()))
    .unwrap_or(Algorithm::RsaSha512)
}

/// Whether the leaf zone currently runs NSEC3.
fn leaf_uses_nsec3(sb: &Sandbox, apex: &Name) -> bool {
    sb.zone(apex)
        .map(|z| z.spec.nsec3.is_some())
        .unwrap_or(false)
}

/// Injects `code` into the leaf zone of the sandbox.
///
/// On success the sandbox's servers exhibit the misconfiguration and the
/// returned [`ErrorDetail`] describes the *intended* finding — the typed
/// payload grok is expected to reproduce (or [`ErrorDetail::None`] when the
/// injection has no single natural payload). A subsequent probe+grok run
/// should list `code` among the leaf-zone errors (possibly alongside benign
/// companion errors, per the paper's footnote 4).
pub fn inject(sb: &mut Sandbox, code: ErrorCode, now: u32) -> Result<ErrorDetail, SkipReason> {
    use ErrorCode::*;
    if !code.replicable() {
        return Err(SkipReason::Unreplicable);
    }
    let apex = sb.leaf().apex.clone();
    let www = apex.child("www").expect("label fits");
    let detail = match code {
        // ----------------------------------------------------- delegation
        DsMissingKeyForAlgorithm => {
            // Extra DS referencing an algorithm absent from the zone (the
            // paper's footnote-4 construction).
            let alg = other_algorithm(sb, &apex, now);
            let ghost = foreign_key(&apex, alg, KeyRole::Ksk, now, 0xD5_01);
            let ds = make_ds(&apex, &ghost.dnskey, DigestType::Sha256);
            let detail = ErrorDetail::DsLink {
                key_tag: ds.key_tag,
                algorithm: ds.algorithm,
                digest_type: ds.digest_type,
                problem: DsProblem::AlgorithmUnmatched,
            };
            let mut ds_set = current_ds(sb, &apex);
            ds_set.push(ds);
            sb.set_ds(&apex, ds_set, now);
            detail
        }
        NoSepForDsAlgorithm => {
            // DS generated from the ZSK instead of the KSK.
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            if key.dnskey.is_sep() {
                return Err(SkipReason::MissingKeyMaterial);
            }
            let ds = make_ds(&apex, &key.dnskey, DigestType::Sha256);
            let detail = ErrorDetail::DsLink {
                key_tag: ds.key_tag,
                algorithm: ds.algorithm,
                digest_type: ds.digest_type,
                problem: DsProblem::MissingSepFlag,
            };
            sb.set_ds(&apex, vec![ds], now);
            detail
        }
        DnskeyMissingForDs => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.strip_type(RrType::Dnskey);
            });
            ErrorDetail::NoDnskeyForDs
        }
        NoSecureEntryPoint | DsDigestInvalid => {
            // Corrupt the digest of every DS: tag+algorithm still match, the
            // hash does not.
            let mut ds_set = current_ds(sb, &apex);
            if ds_set.is_empty() {
                return Err(SkipReason::MissingKeyMaterial);
            }
            for ds in &mut ds_set {
                if let Some(b) = ds.digest.first_mut() {
                    *b ^= 0xFF;
                }
            }
            let detail = ErrorDetail::DsLink {
                key_tag: ds_set[0].key_tag,
                algorithm: ds_set[0].algorithm,
                digest_type: ds_set[0].digest_type,
                problem: DsProblem::DigestMismatch,
            };
            sb.set_ds(&apex, ds_set, now);
            detail
        }
        DsAlgorithmMismatch => {
            let mut ds_set = current_ds(sb, &apex);
            if ds_set.is_empty() {
                return Err(SkipReason::MissingKeyMaterial);
            }
            // Flip the algorithm field only; key tag stays.
            for ds in &mut ds_set {
                ds.algorithm = if ds.algorithm == 8 { 13 } else { 8 };
            }
            let detail = ErrorDetail::DsLink {
                key_tag: ds_set[0].key_tag,
                algorithm: ds_set[0].algorithm,
                digest_type: ds_set[0].digest_type,
                problem: DsProblem::AlgorithmDisagrees,
            };
            sb.set_ds(&apex, ds_set, now);
            detail
        }
        DsUnknownDigestType => {
            let mut ds_set = current_ds(sb, &apex);
            if ds_set.is_empty() {
                return Err(SkipReason::MissingKeyMaterial);
            }
            for ds in &mut ds_set {
                ds.digest_type = 250;
            }
            let detail = ErrorDetail::DsLink {
                key_tag: ds_set[0].key_tag,
                algorithm: ds_set[0].algorithm,
                digest_type: 250,
                problem: DsProblem::UnsupportedDigest,
            };
            sb.set_ds(&apex, ds_set, now);
            detail
        }
        // ------------------------------------------------------------ key
        DnskeyMissingFromServers => {
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let server = sb
                .leaf()
                .servers
                .first()
                .cloned()
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let zone = sb
                .testbed
                .server_mut(&server)
                .and_then(|s| s.zone_mut(&apex))
                .ok_or(SkipReason::MissingKeyMaterial)?;
            zone.remove_rdata(&apex, &RData::Dnskey(key.dnskey.clone()));
            ErrorDetail::ServerKeySetDiffers {
                server,
                disjoint: false,
            }
        }
        DnskeyInconsistentRrset => {
            // Server 0 gets a completely different ZSK published (disjoint
            // key material) while keeping its signatures intact.
            let rogue = foreign_key(
                &apex,
                Algorithm::EcdsaP256Sha256,
                KeyRole::Zsk,
                now,
                0xD5_02,
            );
            let old = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let server = sb
                .leaf()
                .servers
                .first()
                .cloned()
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let zone = sb
                .testbed
                .server_mut(&server)
                .and_then(|s| s.zone_mut(&apex))
                .ok_or(SkipReason::MissingKeyMaterial)?;
            zone.remove_rdata(&apex, &RData::Dnskey(old.dnskey.clone()));
            zone.add(Record::new(
                apex.clone(),
                DNSKEY_TTL,
                RData::Dnskey(rogue.dnskey.clone()),
            ));
            // Also perturb the KSK on that server so neither set contains
            // the other.
            let ksk_key = ksk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let zone = sb
                .testbed
                .server_mut(&server)
                .and_then(|s| s.zone_mut(&apex))
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let _ = ksk_key;
            let rogue_ksk = foreign_key(
                &apex,
                Algorithm::EcdsaP256Sha256,
                KeyRole::Ksk,
                now,
                0xD5_03,
            );
            zone.add(Record::new(
                apex.clone(),
                DNSKEY_TTL,
                RData::Dnskey(rogue_ksk.dnskey.clone()),
            ));
            ErrorDetail::ServerKeySetDiffers {
                server,
                disjoint: true,
            }
        }
        RevokedKeyInUse => {
            // Publish a revoked variant of the ZSK and sign zone data with
            // it.
            let mut revoked = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let old_dnskey = revoked.dnskey.clone();
            revoked.revoke();
            let opts = window(now);
            let revoked_dnskey = revoked.dnskey.clone();
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.remove_rdata(&apex, &RData::Dnskey(old_dnskey.clone()));
                zone.add(Record::new(
                    apex.clone(),
                    DNSKEY_TTL,
                    RData::Dnskey(revoked_dnskey.clone()),
                ));
                resign_rrset(zone, &www, RrType::A, &revoked, opts);
            });
            resign_dnskey(sb, &apex, now);
            ErrorDetail::Note(format!(
                "revoked key_tag={} signs zone data",
                revoked_dnskey.key_tag()
            ))
        }
        DsReferencesRevokedKey | DnskeyRevokedNoOtherSep => {
            // Revoke the only KSK in place; the parent DS is rebuilt from
            // the revoked key so the reference survives the tag change.
            let tag = {
                let z = sb.zone_mut(&apex).ok_or(SkipReason::MissingKeyMaterial)?;
                let ksks = z.ring.active(KeyRole::Ksk, now);
                let tag = ksks
                    .first()
                    .map(|k| k.key_tag())
                    .ok_or(SkipReason::MissingKeyMaterial)?;
                z.ring.by_tag_mut(tag).unwrap().revoke();
                z.ring
                    .keys()
                    .iter()
                    .find(|k| k.is_revoked())
                    .unwrap()
                    .key_tag()
            };
            sb.resign_zone(&apex, now)
                .map_err(|_| SkipReason::MissingKeyMaterial)?;
            let revoked = sb
                .zone(&apex)
                .unwrap()
                .ring
                .keys()
                .iter()
                .find(|k| k.is_revoked())
                .cloned()
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let ds = make_ds(&apex, &revoked.dnskey, DigestType::Sha256);
            sb.set_ds(&apex, vec![ds], now);
            ErrorDetail::RevokedSoleSep { key_tag: tag }
        }
        KeyLengthTooShort => {
            // Publish an extra 384-bit RSA key (below any accepted minimum).
            let stub = KeyPair::generate(
                &mut StdRng::seed_from_u64(0xD5_04),
                apex.clone(),
                Algorithm::RsaSha256,
                384,
                KeyRole::Zsk,
                now,
            );
            let dnskey = stub.dnskey.clone();
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    apex.clone(),
                    DNSKEY_TTL,
                    RData::Dnskey(dnskey.clone()),
                ));
            });
            resign_dnskey(sb, &apex, now);
            ErrorDetail::KeyLength {
                key_tag: dnskey.key_tag(),
                bits: 384,
                algorithm: Algorithm::RsaSha256.code(),
            }
        }
        KeyLengthInvalidForAlgorithm => return Err(SkipReason::Unreplicable),
        // ------------------------------------------------------ algorithm
        DsAlgorithmWithoutRrsig => {
            // Second-algorithm KSK: published, DS uploaded, but nothing is
            // signed with it.
            let alg = other_algorithm(sb, &apex, now);
            let extra = foreign_key(&apex, alg, KeyRole::Ksk, now, 0xD5_05);
            let dnskey = extra.dnskey.clone();
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    apex.clone(),
                    DNSKEY_TTL,
                    RData::Dnskey(dnskey.clone()),
                ));
            });
            resign_dnskey(sb, &apex, now);
            let mut ds_set = current_ds(sb, &apex);
            ds_set.push(make_ds(&apex, &extra.dnskey, DigestType::Sha256));
            sb.set_ds(&apex, ds_set, now);
            ErrorDetail::AlgorithmUnused {
                algorithm: alg.code(),
                scope: AlgorithmScope::Ds,
            }
        }
        DnskeyAlgorithmWithoutRrsig => {
            let alg = other_algorithm(sb, &apex, now);
            let extra = foreign_key(&apex, alg, KeyRole::Zsk, now, 0xD5_06);
            let dnskey = extra.dnskey.clone();
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    apex.clone(),
                    DNSKEY_TTL,
                    RData::Dnskey(dnskey.clone()),
                ));
            });
            resign_dnskey(sb, &apex, now);
            ErrorDetail::AlgorithmUnused {
                algorithm: alg.code(),
                scope: AlgorithmScope::Dnskey,
            }
        }
        RrsigAlgorithmWithoutDnskey => {
            // Sign data with a key that is never published.
            let alg = other_algorithm(sb, &apex, now);
            let ghost = foreign_key(&apex, alg, KeyRole::Zsk, now, 0xD5_07);
            let opts = window(now);
            let zsk_key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                // Keep the valid signature and add the ghost one.
                resign_rrset(zone, &www, RrType::A, &zsk_key, opts);
                if let Some(set) = zone.get(&www, RrType::A).cloned() {
                    let sig = ddx_dnssec::sign_rrset(&set, &ghost, opts);
                    zone.add(Record::new(www.clone(), set.ttl, RData::Rrsig(sig)));
                }
            });
            ErrorDetail::AlgorithmUnused {
                algorithm: alg.code(),
                scope: AlgorithmScope::Rrsig,
            }
        }
        // ------------------------------------------------------ signature
        RrsigMissing => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
            });
            ErrorDetail::RrsetUnsigned {
                name: www.clone(),
                rtype: RrType::A,
            }
        }
        RrsigMissingFromServers => {
            let server = sb
                .leaf()
                .servers
                .first()
                .cloned()
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let zone = sb
                .testbed
                .server_mut(&server)
                .and_then(|s| s.zone_mut(&apex))
                .ok_or(SkipReason::MissingKeyMaterial)?;
            ddx_dnssec::remove_sigs_covering(zone, &www, RrType::A);
            ErrorDetail::RrsetUnsigned {
                name: www.clone(),
                rtype: RrType::A,
            }
        }
        RrsigMissingForDnskey => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                ddx_dnssec::remove_sigs_covering(zone, &apex, RrType::Dnskey);
            });
            ErrorDetail::RrsetUnsigned {
                name: apex.clone(),
                rtype: RrType::Dnskey,
            }
        }
        RrsigExpired => {
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = SignOptions {
                inception: now.saturating_sub(40 * 86_400),
                expiration: now.saturating_sub(86_400),
            };
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                resign_rrset(zone, &www, RrType::A, &key, opts);
            });
            ErrorDetail::SignatureFailure {
                name: www.clone(),
                rtype: RrType::A,
                error: VerifyError::Expired {
                    expiration: opts.expiration,
                    now,
                },
            }
        }
        RrsigNotYetValid => {
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = SignOptions {
                inception: now + 86_400,
                expiration: now + 40 * 86_400,
            };
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                resign_rrset(zone, &www, RrType::A, &key, opts);
            });
            ErrorDetail::SignatureFailure {
                name: www.clone(),
                rtype: RrType::A,
                error: VerifyError::NotYetValid {
                    inception: opts.inception,
                    now,
                },
            }
        }
        RrsigInvalid => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                tamper_sig(zone, &www, RrType::A, |sig| {
                    if let Some(b) = sig.signature.first_mut() {
                        *b ^= 0xFF;
                    }
                });
            });
            ErrorDetail::SignatureFailure {
                name: www.clone(),
                rtype: RrType::A,
                error: VerifyError::BadSignature,
            }
        }
        RrsigInvalidRdata => {
            // A published non-zone key signing data: verifiers reject the
            // RDATA combination outright.
            let mut nonzone = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            nonzone.dnskey.flags &= !ddx_dns::DNSKEY_FLAG_ZONE;
            let dnskey = nonzone.dnskey.clone();
            let opts = window(now);
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    apex.clone(),
                    DNSKEY_TTL,
                    RData::Dnskey(dnskey.clone()),
                ));
                resign_rrset(zone, &www, RrType::A, &nonzone, opts);
            });
            resign_dnskey(sb, &apex, now);
            ErrorDetail::SignatureFailure {
                name: www.clone(),
                rtype: RrType::A,
                error: VerifyError::NotZoneKey,
            }
        }
        RrsigUnknownKeyTag => {
            // Sign with an unpublished key of an algorithm the zone uses.
            let used_alg = sb
                .zone(&apex)
                .and_then(|z| z.ring.keys().first().and_then(|k| k.algorithm()))
                .ok_or(SkipReason::MissingKeyMaterial)?;
            let ghost = foreign_key(&apex, used_alg, KeyRole::Zsk, now, 0xD5_08);
            let opts = window(now);
            let detail = ErrorDetail::SigNoMatchingKey {
                name: www.clone(),
                rtype: RrType::A,
                key_tag: ghost.key_tag(),
                algorithm: used_alg.code(),
            };
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                resign_rrset(zone, &www, RrType::A, &ghost, opts);
            });
            detail
        }
        RrsigSignerMismatch => {
            let mut key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            key.zone = sb.zones[1].apex.clone(); // the parent zone's name
            let opts = window(now);
            let detail = ErrorDetail::SignatureFailure {
                name: www.clone(),
                rtype: RrType::A,
                error: VerifyError::SignerMismatch {
                    signer: key.zone.clone(),
                    zone: apex.clone(),
                },
            };
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                resign_rrset(zone, &www, RrType::A, &key, opts);
            });
            detail
        }
        RrsigLabelsExceedOwner => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                tamper_sig(zone, &www, RrType::A, |sig| {
                    sig.labels = sig.labels.saturating_add(3);
                });
            });
            ErrorDetail::None
        }
        RrsigBadLength => {
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                tamper_sig(zone, &www, RrType::A, |sig| {
                    sig.signature.truncate(sig.signature.len() / 2);
                });
            });
            ErrorDetail::None
        }
        // ------------------------------------------------------------ TTL
        OriginalTtlExceeded => {
            // Serve the RRset with a TTL larger than the signed original.
            let original_ttl = served_ttl(sb, &apex, &www, RrType::A).unwrap_or(300);
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                if let Some(set) = zone.get_mut(&www, RrType::A) {
                    set.ttl = set.ttl.saturating_mul(10);
                }
            });
            ErrorDetail::TtlExceedsOriginal {
                name: www.clone(),
                rtype: RrType::A,
                ttl: original_ttl.saturating_mul(10),
                original_ttl,
            }
        }
        TtlBeyondSignatureExpiry => {
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = SignOptions {
                inception: now.saturating_sub(3600),
                expiration: now + 60, // valid, but far shorter than the TTL
            };
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                resign_rrset(zone, &www, RrType::A, &key, opts);
            });
            ErrorDetail::TtlOutlivesSignature {
                name: www.clone(),
                rtype: RrType::A,
                ttl: served_ttl(sb, &apex, &www, RrType::A).unwrap_or(300),
            }
        }
        // -------------------------------------------------------- denial
        NsecProofMissing => {
            if leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.strip_type(RrType::Nsec);
            });
            ErrorDetail::NoProof { nsec3: false }
        }
        Nsec3ProofMissing => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.strip_type(RrType::Nsec3);
            });
            ErrorDetail::NoProof { nsec3: true }
        }
        NsecBitmapAssertsType => {
            if leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let probe_type = ddx_dnsviz::probe::NODATA_PROBE_TYPE;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                let target = apex.clone();
                if let Some(set) = zone.get_mut(&target, RrType::Nsec) {
                    for rd in &mut set.rdatas {
                        if let RData::Nsec(n) = rd {
                            n.type_bitmap.insert(probe_type);
                        }
                    }
                }
                resign_rrset(zone, &target, RrType::Nsec, &key, opts);
            });
            ErrorDetail::BitmapAssertsType {
                qname: apex.clone(),
                rtype: probe_type,
                nsec3: false,
            }
        }
        Nsec3BitmapAssertsType => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let probe_type = ddx_dnsviz::probe::NODATA_PROBE_TYPE;
            let owner = nsec3_owner_of(sb, &apex, &apex).ok_or(SkipReason::MissingKeyMaterial)?;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                if let Some(set) = zone.get_mut(&owner, RrType::Nsec3) {
                    for rd in &mut set.rdatas {
                        if let RData::Nsec3(n) = rd {
                            n.type_bitmap.insert(probe_type);
                        }
                    }
                }
                resign_rrset(zone, &owner, RrType::Nsec3, &key, opts);
            });
            ErrorDetail::BitmapAssertsType {
                qname: apex.clone(),
                rtype: probe_type,
                nsec3: true,
            }
        }
        NsecCoverageBroken => {
            if leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            // Shrink the apex NSEC span so the probe label is uncovered.
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let short = apex.child("aaaa").expect("label fits");
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                let target = apex.clone();
                if let Some(set) = zone.get_mut(&target, RrType::Nsec) {
                    for rd in &mut set.rdatas {
                        if let RData::Nsec(n) = rd {
                            n.next_name = short.clone();
                        }
                    }
                }
                resign_rrset(zone, &target, RrType::Nsec, &key, opts);
            });
            ErrorDetail::NotCovered {
                qname: apex
                    .child(ddx_dnsviz::probe::NX_PROBE_LABEL)
                    .expect("label fits"),
                nsec3: false,
            }
        }
        Nsec3CoverageBroken => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            // Remove the NSEC3 record covering the hash of the NX probe
            // label, without touching the closest-encloser match.
            let nx = apex
                .child(ddx_dnsviz::probe::NX_PROBE_LABEL)
                .expect("label fits");
            let cover = nsec3_cover_of(sb, &apex, &nx).ok_or(SkipReason::MissingKeyMaterial)?;
            let apex_match = nsec3_owner_of(sb, &apex, &apex);
            if Some(&cover) == apex_match.as_ref() {
                // The apex match doubles as the cover: shrink its span
                // instead of removing it.
                let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
                let opts = window(now);
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    if let Some(set) = zone.get_mut(&cover, RrType::Nsec3) {
                        for rd in &mut set.rdatas {
                            if let RData::Nsec3(n) = rd {
                                // Point next-hash right after the owner so
                                // nothing else is covered.
                                let own = owner_label_hash(&cover).unwrap_or(vec![0; 20]);
                                let mut next = own.clone();
                                if let Some(last) = next.last_mut() {
                                    *last = last.wrapping_add(1);
                                }
                                n.next_hashed_owner = next;
                            }
                        }
                    }
                    resign_rrset(zone, &cover, RrType::Nsec3, &key, opts);
                });
            } else {
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    zone.remove(&cover, RrType::Nsec3);
                    zone.remove(&cover, RrType::Rrsig);
                });
            }
            ErrorDetail::NotCovered {
                qname: nx,
                nsec3: true,
            }
        }
        NsecMissingWildcardProof => {
            if leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            // Insert an `aaaa` record so the NX probe is covered by its
            // NSEC, then cut the apex NSEC span to exactly the wildcard —
            // leaving `*.apex` unproven.
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let aaaa = apex.child("aaaa").expect("label fits");
            let wildcard = apex.child("*").expect("label fits");
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.add(Record::new(
                    aaaa.clone(),
                    300,
                    RData::A(std::net::Ipv4Addr::new(198, 51, 100, 44)),
                ));
                if let Some(set) = zone.get(&apex, RrType::Nsec).cloned() {
                    // apex NSEC now ends at the wildcard name.
                    let mut set = set;
                    for rd in &mut set.rdatas {
                        if let RData::Nsec(n) = rd {
                            n.next_name = wildcard.clone();
                        }
                    }
                    zone.put_rrset(set);
                }
                // aaaa gets an NSEC chaining onward past the probe label.
                let next_after = zone
                    .names()
                    .filter(|n| *n > &aaaa && zone.get(n, RrType::Nsec).is_some())
                    .min()
                    .cloned()
                    .unwrap_or_else(|| apex.clone());
                zone.add(Record::new(
                    aaaa.clone(),
                    300,
                    RData::Nsec(ddx_dns::Nsec {
                        next_name: next_after,
                        type_bitmap: ddx_dns::TypeBitmap::from_types([
                            RrType::A,
                            RrType::Rrsig,
                            RrType::Nsec,
                        ]),
                    }),
                ));
                resign_rrset(zone, &apex, RrType::Nsec, &key, opts);
                resign_rrset(zone, &aaaa, RrType::A, &key, opts);
                resign_rrset(zone, &aaaa, RrType::Nsec, &key, opts);
            });
            ErrorDetail::WildcardUnproven {
                qname: apex
                    .child(ddx_dnsviz::probe::NX_PROBE_LABEL)
                    .expect("label fits"),
            }
        }
        Nsec3MissingWildcardProof => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let wildcard = apex.child("*").expect("label fits");
            let nx = apex
                .child(ddx_dnsviz::probe::NX_PROBE_LABEL)
                .expect("label fits");
            let wc_cover =
                nsec3_cover_of(sb, &apex, &wildcard).ok_or(SkipReason::MissingKeyMaterial)?;
            let nx_cover = nsec3_cover_of(sb, &apex, &nx);
            let apex_match = nsec3_owner_of(sb, &apex, &apex);
            if Some(&wc_cover) == nx_cover.as_ref() || Some(&wc_cover) == apex_match.as_ref() {
                // Same record also needed for the rest of the proof: shrink
                // its span to stop just before the wildcard hash.
                let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
                let opts = window(now);
                let wc_hash =
                    leaf_hash(sb, &apex, &wildcard).ok_or(SkipReason::MissingKeyMaterial)?;
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    if let Some(set) = zone.get_mut(&wc_cover, RrType::Nsec3) {
                        for rd in &mut set.rdatas {
                            if let RData::Nsec3(n) = rd {
                                n.next_hashed_owner = wc_hash.clone();
                            }
                        }
                    }
                    resign_rrset(zone, &wc_cover, RrType::Nsec3, &key, opts);
                });
            } else {
                sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                    zone.remove(&wc_cover, RrType::Nsec3);
                    zone.remove(&wc_cover, RrType::Rrsig);
                });
            }
            ErrorDetail::WildcardUnproven { qname: nx }
        }
        Nsec3ParamMismatch => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let (salt, iterations) =
                leaf_nsec3_params(sb, &apex).ok_or(SkipReason::MissingKeyMaterial)?;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                let target = apex.clone();
                if let Some(set) = zone.get_mut(&target, RrType::Nsec3Param) {
                    for rd in &mut set.rdatas {
                        if let RData::Nsec3Param(p) = rd {
                            p.iterations = p.iterations.saturating_add(5);
                        }
                    }
                }
                resign_rrset(zone, &target, RrType::Nsec3Param, &key, opts);
            });
            ErrorDetail::Nsec3ParamDisagrees {
                iterations: iterations.saturating_add(5),
                salt_len: salt.len(),
            }
        }
        LastNsecNotApex => {
            if leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let bogus_next = apex.child("aaaa").expect("label fits");
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                // Find the wrap-around NSEC (next == apex) and corrupt it.
                let last_owner = zone
                    .rrsets()
                    .filter(|s| s.rtype == RrType::Nsec)
                    .find_map(|s| {
                        s.rdatas.iter().find_map(|rd| match rd {
                            RData::Nsec(n) if n.next_name == apex => Some(s.name.clone()),
                            _ => None,
                        })
                    });
                if let Some(owner) = last_owner {
                    if let Some(set) = zone.get_mut(&owner, RrType::Nsec) {
                        for rd in &mut set.rdatas {
                            if let RData::Nsec(n) = rd {
                                if n.next_name == apex {
                                    n.next_name = bogus_next.clone();
                                }
                            }
                        }
                    }
                    resign_rrset(zone, &owner, RrType::Nsec, &key, opts);
                }
            });
            ErrorDetail::None
        }
        Nsec3IterationsNonzero => {
            // A build-time parameter, not a tamper: re-sign with nonzero
            // iterations if the zone is not already NZIC.
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let needs_resign = {
                let z = sb.zone(&apex).unwrap();
                matches!(
                    &z.spec.nsec3,
                    Some(cfg) if cfg.iterations == 0
                )
            };
            if needs_resign {
                {
                    let z = sb.zone_mut(&apex).unwrap();
                    if let Some(n3) = &mut z.spec.nsec3 {
                        n3.iterations = 10;
                    }
                    z.signer_config =
                        ddx_dnssec::SignerConfig::nsec3_at(now, z.spec.nsec3.clone().unwrap());
                }
                sb.resign_zone(&apex, now)
                    .map_err(|_| SkipReason::MissingKeyMaterial)?;
            }
            let iterations = sb
                .zone(&apex)
                .and_then(|z| z.spec.nsec3.as_ref())
                .map(|n3| n3.iterations)
                .unwrap_or(10);
            ErrorDetail::Nsec3Iterations { iterations }
        }
        Nsec3OptOutViolation => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            let owner = nsec3_owner_of(sb, &apex, &apex).ok_or(SkipReason::MissingKeyMaterial)?;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                if let Some(set) = zone.get_mut(&owner, RrType::Nsec3) {
                    for rd in &mut set.rdatas {
                        if let RData::Nsec3(n) = rd {
                            n.flags ^= ddx_dns::NSEC3_FLAG_OPT_OUT;
                        }
                    }
                }
                resign_rrset(zone, &owner, RrType::Nsec3, &key, opts);
            });
            ErrorDetail::OptOutInconsistent
        }
        Nsec3UnsupportedAlgorithm => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            let key = zsk(sb, &apex, now).ok_or(SkipReason::MissingKeyMaterial)?;
            let opts = window(now);
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                let owners: Vec<Name> = zone
                    .rrsets()
                    .filter(|s| s.rtype == RrType::Nsec3)
                    .map(|s| s.name.clone())
                    .collect();
                for owner in owners {
                    if let Some(set) = zone.get_mut(&owner, RrType::Nsec3) {
                        for rd in &mut set.rdatas {
                            if let RData::Nsec3(n) = rd {
                                n.hash_algorithm = 6;
                            }
                        }
                    }
                    resign_rrset(zone, &owner, RrType::Nsec3, &key, opts);
                }
            });
            ErrorDetail::Nsec3HashAlgorithm { algorithm: 6 }
        }
        Nsec3NoClosestEncloser => {
            if !leaf_uses_nsec3(sb, &apex) {
                return Err(SkipReason::DenialModeMismatch);
            }
            // Remove the NSEC3 record matching the apex: the closest
            // encloser of the NX probe can no longer be proven.
            let owner = nsec3_owner_of(sb, &apex, &apex).ok_or(SkipReason::MissingKeyMaterial)?;
            sb.testbed.mutate_zone_everywhere(&apex, |zone| {
                zone.remove(&owner, RrType::Nsec3);
                zone.remove(&owner, RrType::Rrsig);
            });
            ErrorDetail::NoClosestEncloser {
                qname: apex
                    .child(ddx_dnsviz::probe::NX_PROBE_LABEL)
                    .expect("label fits"),
            }
        }
        // Explicitly unreplicable (also caught by the guard above).
        Nsec3InconsistentAncestor | Nsec3HashInvalidLength | Nsec3OwnerNotBase32 => {
            return Err(SkipReason::Unreplicable)
        }
        // Extension code: a representative KeyTrap-class injection. The
        // full adversarial corpus (all four families) lives in
        // [`crate::attack`]; picking by denial mode keeps this arm valid
        // for both NSEC and NSEC3 metas.
        ValidationBudgetExceeded => {
            let family = if leaf_uses_nsec3(sb, &apex) {
                crate::attack::AttackFamily::Nsec3Iterations
            } else {
                crate::attack::AttackFamily::SigJam
            };
            let (_, detail) = crate::attack::inject_attack(sb, family, now)?;
            detail
        }
    };
    Ok(detail)
}

// --------------------------------------------------------------- utilities

/// The TTL the leaf zone's first server currently serves for an RRset.
fn served_ttl(sb: &Sandbox, apex: &Name, name: &Name, rtype: RrType) -> Option<u32> {
    let server = sb.zone(apex)?.servers.first()?;
    sb.testbed
        .server(server)?
        .zone(apex)?
        .get(name, rtype)
        .map(|set| set.ttl)
}

/// Current DS RRset for `child` as stored in its parent zone.
fn current_ds(sb: &Sandbox, child: &Name) -> Vec<ddx_dns::Ds> {
    let parent_apex = sb
        .zones
        .iter()
        .map(|z| z.apex.clone())
        .filter(|a| child.is_strict_subdomain_of(a))
        .max_by_key(|a| a.label_count());
    let Some(parent_apex) = parent_apex else {
        return Vec::new();
    };
    let Some(parent_zone) = sb.zone(&parent_apex) else {
        return Vec::new();
    };
    let Some(server) = parent_zone.servers.first() else {
        return Vec::new();
    };
    sb.testbed
        .server(server)
        .and_then(|s| s.zone(&parent_apex))
        .and_then(|z| z.get(child, RrType::Ds))
        .map(|set| {
            set.rdatas
                .iter()
                .filter_map(|rd| match rd {
                    RData::Ds(d) => Some(d.clone()),
                    _ => None,
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Mutates the first RRSIG covering (`name`, `rtype`) in place.
fn tamper_sig<F: FnMut(&mut ddx_dns::Rrsig)>(
    zone: &mut ddx_dns::Zone,
    name: &Name,
    rtype: RrType,
    mut f: F,
) {
    let sigs = sigs_covering(zone, name, rtype);
    let Some(orig) = sigs.first() else {
        return;
    };
    let mut new_sig = orig.clone();
    f(&mut new_sig);
    let orig_rd = RData::Rrsig(orig.clone());
    zone.remove_rdata(name, &orig_rd);
    zone.add(Record::new(name.clone(), 300, RData::Rrsig(new_sig)));
}

/// Base32hex-decoded first label of an NSEC3 owner.
fn owner_label_hash(owner: &Name) -> Option<Vec<u8>> {
    let label = owner.labels().first()?;
    base32::decode(std::str::from_utf8(label.as_bytes()).ok()?)
}

/// The NSEC3 parameters the leaf zone actually uses right now.
fn leaf_nsec3_params(sb: &Sandbox, apex: &Name) -> Option<(Vec<u8>, u16)> {
    let z = sb.zone(apex)?;
    let server = z.servers.first()?;
    let zone = sb.testbed.server(server)?.zone(apex)?;
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec3)
        .find_map(|s| match s.rdatas.first() {
            Some(RData::Nsec3(n)) => Some((n.salt.clone(), n.iterations)),
            _ => None,
        })
}

/// The NSEC3 hash of `target` under the leaf zone's parameters.
fn leaf_hash(sb: &Sandbox, apex: &Name, target: &Name) -> Option<Vec<u8>> {
    let (salt, iterations) = leaf_nsec3_params(sb, apex)?;
    Some(nsec3_hash(target, &salt, iterations))
}

/// The owner name of the NSEC3 record whose hash matches `target`.
fn nsec3_owner_of(sb: &Sandbox, apex: &Name, target: &Name) -> Option<Name> {
    let h = leaf_hash(sb, apex, target)?;
    let z = sb.zone(apex)?;
    let server = z.servers.first()?;
    let zone = sb.testbed.server(server)?.zone(apex)?;
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec3)
        .find(|s| owner_label_hash(&s.name).as_deref() == Some(&h[..]))
        .map(|s| s.name.clone())
}

/// The owner name of the NSEC3 record covering (not matching) `target`.
fn nsec3_cover_of(sb: &Sandbox, apex: &Name, target: &Name) -> Option<Name> {
    let h = leaf_hash(sb, apex, target)?;
    let z = sb.zone(apex)?;
    let server = z.servers.first()?;
    let zone = sb.testbed.server(server)?.zone(apex)?;
    zone.rrsets()
        .filter(|s| s.rtype == RrType::Nsec3)
        .find(|s| {
            let Some(oh) = owner_label_hash(&s.name) else {
                return false;
            };
            s.rdatas.iter().any(|rd| match rd {
                RData::Nsec3(n) => ddx_dnssec::nsec3::hash_covered(&oh, &n.next_hashed_owner, &h),
                _ => false,
            })
        })
        .map(|s| s.name.clone())
}
