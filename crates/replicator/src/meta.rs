//! Zone meta-parameters extracted from a snapshot (paper §5.1 step 2):
//! DNSKEY properties, delegation settings, and NSEC vs NSEC3 usage — plus
//! the algorithm-substitution logic of §5.5.1 for algorithms the local
//! signer cannot generate.

use serde::{Deserialize, Serialize};

use ddx_dnssec::{Algorithm, DigestType, KeyRole, Nsec3Config};

/// Key blueprint: role, algorithm code (as observed, possibly deprecated),
/// and size in bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct KeySpec {
    pub role: KeyRole,
    pub algorithm: u8,
    pub bits: u16,
}

/// NSEC3 parameters observed in the wild.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Nsec3Meta {
    pub iterations: u16,
    pub salt_len: u8,
    pub opt_out: bool,
}

impl Nsec3Meta {
    /// Concrete chain parameters (salt bytes derived deterministically).
    pub fn to_config(&self) -> Nsec3Config {
        Nsec3Config {
            hash_algorithm: ddx_dnssec::NSEC3_HASH_SHA1,
            iterations: self.iterations,
            salt: (0..self.salt_len).map(|i| 0xA0 ^ i).collect(),
            opt_out: self.opt_out,
        }
    }
}

/// Everything ZReplicator mirrors from the original zone.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZoneMeta {
    pub keys: Vec<KeySpec>,
    /// DS digest type codes at the parent.
    pub ds_digest_types: Vec<u8>,
    /// `None` → NSEC.
    pub nsec3: Option<Nsec3Meta>,
}

impl Default for ZoneMeta {
    /// The most common real-world profile: one KSK + one ZSK (ECDSA P-256),
    /// one SHA-256 DS, NSEC.
    fn default() -> Self {
        ZoneMeta {
            keys: vec![
                KeySpec {
                    role: KeyRole::Ksk,
                    algorithm: Algorithm::EcdsaP256Sha256.code(),
                    bits: 256,
                },
                KeySpec {
                    role: KeyRole::Zsk,
                    algorithm: Algorithm::EcdsaP256Sha256.code(),
                    bits: 256,
                },
            ],
            ds_digest_types: vec![DigestType::Sha256.code()],
            nsec3: None,
        }
    }
}

/// One algorithm substitution that was applied (observed → generated).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Substitution {
    pub observed: u8,
    pub generated: u8,
}

/// Why the meta could not be realized locally.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum MetaError {
    /// An observed algorithm is unknown *and* every substitute is already
    /// used by the zone (paper: "a small fraction of zones exhaust all
    /// supported algorithms, making exact replication impossible").
    AlgorithmExhausted { observed: u8 },
    /// The meta declares no keys at all.
    NoKeys,
}

impl std::fmt::Display for MetaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MetaError::AlgorithmExhausted { observed } => {
                write!(f, "no substitute available for algorithm {observed}")
            }
            MetaError::NoKeys => write!(f, "zone meta has no keys"),
        }
    }
}

/// The realizable key plan after substitution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyPlan {
    pub keys: Vec<(KeyRole, Algorithm, u16)>,
    pub substitutions: Vec<Substitution>,
}

/// Maps observed key specs onto generatable ones, substituting deprecated
/// algorithms (e.g. DSA-NSEC3-SHA1 → RSASHA256) while never colliding with
/// an algorithm the zone already uses (§5.5.1).
pub fn plan_keys(meta: &ZoneMeta) -> Result<KeyPlan, MetaError> {
    if meta.keys.is_empty() {
        return Err(MetaError::NoKeys);
    }
    let mut in_use: Vec<u8> = meta
        .keys
        .iter()
        .filter_map(|k| Algorithm::from_code(k.algorithm).filter(|a| a.supported_by_bind()))
        .map(|a| a.code())
        .collect();
    let mut out = Vec::new();
    let mut substitutions = Vec::new();
    // Remember the substitute chosen per observed algorithm so a KSK/ZSK
    // pair of the same deprecated algorithm stays a pair.
    let mut chosen: Vec<(u8, Algorithm)> = Vec::new();
    for spec in &meta.keys {
        let alg = Algorithm::from_code(spec.algorithm).filter(|a| a.supported_by_bind());
        let (alg, bits) = match alg {
            Some(a) => {
                let bits = if a.key_bits_valid(spec.bits) {
                    spec.bits
                } else {
                    a.default_key_bits()
                };
                (a, bits)
            }
            None => {
                let existing = chosen.iter().find(|(o, _)| *o == spec.algorithm);
                let substitute = match existing {
                    Some((_, a)) => *a,
                    None => {
                        let Some(a) = Algorithm::RsaSha256
                            .substitutes()
                            .iter()
                            .copied()
                            .find(|a| !in_use.contains(&a.code()))
                        else {
                            return Err(MetaError::AlgorithmExhausted {
                                observed: spec.algorithm,
                            });
                        };
                        in_use.push(a.code());
                        chosen.push((spec.algorithm, a));
                        substitutions.push(Substitution {
                            observed: spec.algorithm,
                            generated: a.code(),
                        });
                        a
                    }
                };
                (substitute, substitute.default_key_bits())
            }
        };
        out.push((spec.role, alg, bits));
    }
    Ok(KeyPlan {
        keys: out,
        substitutions,
    })
}

/// DS digest types, defaulting unknown codes to SHA-256.
pub fn plan_digests(meta: &ZoneMeta) -> Vec<DigestType> {
    let mut out: Vec<DigestType> = meta
        .ds_digest_types
        .iter()
        .map(|&c| DigestType::from_code(c).unwrap_or(DigestType::Sha256))
        .collect();
    out.dedup();
    if out.is_empty() {
        out.push(DigestType::Sha256);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_meta_plans_cleanly() {
        let plan = plan_keys(&ZoneMeta::default()).unwrap();
        assert_eq!(plan.keys.len(), 2);
        assert!(plan.substitutions.is_empty());
    }

    #[test]
    fn deprecated_algorithm_substituted() {
        let meta = ZoneMeta {
            keys: vec![
                KeySpec {
                    role: KeyRole::Ksk,
                    algorithm: 6, // DSA-NSEC3-SHA1: unsupported
                    bits: 1024,
                },
                KeySpec {
                    role: KeyRole::Zsk,
                    algorithm: 6,
                    bits: 1024,
                },
            ],
            ds_digest_types: vec![2],
            nsec3: None,
        };
        let plan = plan_keys(&meta).unwrap();
        // Both keys land on the same substitute.
        assert_eq!(plan.keys[0].1, plan.keys[1].1);
        assert_eq!(plan.substitutions.len(), 1);
        assert_eq!(plan.substitutions[0].observed, 6);
        assert_eq!(plan.substitutions[0].generated, 8);
    }

    #[test]
    fn substitute_avoids_in_use_algorithm() {
        let meta = ZoneMeta {
            keys: vec![
                KeySpec {
                    role: KeyRole::Ksk,
                    algorithm: 8, // RSASHA256 already used
                    bits: 2048,
                },
                KeySpec {
                    role: KeyRole::Zsk,
                    algorithm: 3, // DSA → must not collide with 8
                    bits: 1024,
                },
            ],
            ds_digest_types: vec![2],
            nsec3: None,
        };
        let plan = plan_keys(&meta).unwrap();
        assert_eq!(plan.keys[1].1.code(), 13);
    }

    #[test]
    fn exhaustion_detected() {
        let meta = ZoneMeta {
            keys: vec![
                KeySpec {
                    role: KeyRole::Ksk,
                    algorithm: 8,
                    bits: 2048,
                },
                KeySpec {
                    role: KeyRole::Ksk,
                    algorithm: 13,
                    bits: 256,
                },
                KeySpec {
                    role: KeyRole::Zsk,
                    algorithm: 3,
                    bits: 1024,
                },
            ],
            ds_digest_types: vec![2],
            nsec3: None,
        };
        assert_eq!(
            plan_keys(&meta),
            Err(MetaError::AlgorithmExhausted { observed: 3 })
        );
    }

    #[test]
    fn invalid_bits_fall_back_to_default() {
        let meta = ZoneMeta {
            keys: vec![KeySpec {
                role: KeyRole::Ksk,
                algorithm: 8,
                bits: 100, // impossible
            }],
            ds_digest_types: vec![2],
            nsec3: None,
        };
        let plan = plan_keys(&meta).unwrap();
        assert_eq!(plan.keys[0].2, 2048);
    }

    #[test]
    fn digest_planning() {
        let meta = ZoneMeta {
            ds_digest_types: vec![1, 2, 99],
            ..Default::default()
        };
        let digests = plan_digests(&meta);
        assert_eq!(digests, vec![DigestType::Sha1, DigestType::Sha256]);
        assert_eq!(
            plan_digests(&ZoneMeta {
                ds_digest_types: vec![],
                ..Default::default()
            }),
            vec![DigestType::Sha256]
        );
    }

    #[test]
    fn nsec3_meta_to_config() {
        let m = Nsec3Meta {
            iterations: 10,
            salt_len: 8,
            opt_out: true,
        };
        let cfg = m.to_config();
        assert_eq!(cfg.iterations, 10);
        assert_eq!(cfg.salt.len(), 8);
        assert!(cfg.opt_out);
        assert!(!cfg.rfc9276_compliant());
    }

    #[test]
    fn no_keys_rejected() {
        let meta = ZoneMeta {
            keys: vec![],
            ds_digest_types: vec![2],
            nsec3: None,
        };
        assert_eq!(plan_keys(&meta), Err(MetaError::NoKeys));
    }
}
