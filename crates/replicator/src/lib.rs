//! # ddx-replicator — ZReplicator
//!
//! Recreates real-world DNSSEC misconfigurations inside a local sandbox
//! (paper §4.5): a base zone `a.com`, a parent `par.a.com`, and the target
//! `inv-chd.par.a.com`, each on two authoritative servers. Zone
//! meta-parameters (key algorithms/sizes/flags, DS digest types, NSEC vs
//! NSEC3 and its parameters) are mirrored from the snapshot; deprecated
//! algorithms are substituted per §5.5.1; and each intended error code is
//! injected by surgical zone tampering.

pub mod attack;
pub mod inject;
pub mod meta;
pub mod replicate;

pub use attack::{inject_attack, replicate_attack, AttackFamily};
pub use inject::{inject, injection_phase, SkipReason};
pub use meta::{
    plan_digests, plan_keys, KeyPlan, KeySpec, MetaError, Nsec3Meta, Substitution, ZoneMeta,
};
pub use replicate::{
    anchor_apex, parent_apex, probe_config_for, replicate, target_apex, Replication,
    ReplicationRequest,
};
