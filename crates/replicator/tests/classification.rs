//! Status-classification matrix: replicating each error code solo must
//! yield the snapshot status its criticality implies — `sb` for
//! SERVFAIL-level errors, `svm` for tolerated violations (paper §3.2.1).

use std::collections::BTreeSet;

use ddx_dnsviz::{grok, probe, ErrorCode, SnapshotStatus};
use ddx_replicator::{replicate, Nsec3Meta, ReplicationRequest, ZoneMeta};

const NOW: u32 = 1_000_000;

fn needs_nsec3(code: ErrorCode) -> bool {
    use ErrorCode::*;
    matches!(
        code,
        Nsec3ProofMissing
            | Nsec3BitmapAssertsType
            | Nsec3CoverageBroken
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch
            | Nsec3IterationsNonzero
            | Nsec3OptOutViolation
            | Nsec3UnsupportedAlgorithm
            | Nsec3NoClosestEncloser
    )
}

#[test]
fn criticality_drives_snapshot_status() {
    let mut failures = Vec::new();
    for code in ErrorCode::ALL {
        if !code.replicable() {
            continue;
        }
        let mut meta = ZoneMeta::default();
        if needs_nsec3(code) {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        let req = ReplicationRequest {
            meta,
            intended: BTreeSet::from([code]),
        };
        let rep = replicate(&req, NOW, 0xC1A5).expect("replicates");
        if !rep.skipped.is_empty() {
            continue;
        }
        let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
        // Contextual criticality: the snapshot is sb iff any generated
        // error instance is critical in context.
        let any_critical = report.errors().any(|e| e.critical);
        let expected = if any_critical {
            SnapshotStatus::Sb
        } else {
            SnapshotStatus::Svm
        };
        if report.status != expected {
            failures.push(format!(
                "{code}: status {} but any_critical={any_critical} ({:?})",
                report.status,
                report.codes()
            ));
        }
        // And statically-critical codes should produce sb when injected
        // solo (no alternate valid path exists for the affected RRset).
        if code.is_critical() && report.status != SnapshotStatus::Sb {
            failures.push(format!(
                "{code} is critical but snapshot is {}",
                report.status
            ));
        }
        if !code.is_critical() && report.status == SnapshotStatus::Sb {
            // A tolerated code must not, alone, produce SERVFAIL — unless a
            // critical companion was generated.
            let companion_critical = report.codes().iter().any(|c| *c != code && c.is_critical());
            if !companion_critical {
                failures.push(format!("{code} is tolerated but snapshot is sb"));
            }
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn clean_zone_is_sv_under_both_denial_modes() {
    for nsec3 in [false, true] {
        let mut meta = ZoneMeta::default();
        if nsec3 {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        let req = ReplicationRequest {
            meta,
            intended: BTreeSet::new(),
        };
        let rep = replicate(&req, NOW, 3).unwrap();
        let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
        assert_eq!(
            report.status,
            SnapshotStatus::Sv,
            "nsec3={nsec3}: {:?}",
            report.codes()
        );
    }
}

#[test]
fn optout_zone_is_valid() {
    // Opt-out by itself is legal (RFC 5155 §6).
    let req = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: true,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 4).unwrap();
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
}

#[test]
fn salted_nsec3_zone_is_valid_but_noncompliant_upstream() {
    // A salted, zero-iteration NSEC3 zone validates (salt is a SHOULD-level
    // concern, excluded from the paper's error set).
    let req = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 0,
                salt_len: 8,
                opt_out: false,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 5).unwrap();
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
}
