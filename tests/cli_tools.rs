//! End-to-end tests of the released command-line tools, invoked as real
//! subprocesses (Cargo builds the bins for integration tests and exposes
//! their paths via `CARGO_BIN_EXE_*`).

use std::process::Command;

fn dfixer() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dfixer"))
}

fn zreplicator() -> Command {
    Command::new(env!("CARGO_BIN_EXE_zreplicator"))
}

#[test]
fn dfixer_lists_all_47_codes() {
    let out = dfixer().arg("--list-errors").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(text.lines().count(), 47);
    assert!(text.contains("Nsec3IterationsNonzero"));
    assert!(text.contains("(unreplicable)"));
}

#[test]
fn dfixer_auto_fixes_and_exits_zero() {
    let out = dfixer()
        .args(["--errors", "RrsigExpired", "--auto"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("status sb"), "{text}");
    assert!(text.contains("RrsigExpired"));
    assert!(text.contains("fixed=true"));
    assert!(text.contains("final status=sv"));
}

#[test]
fn dfixer_rejects_unknown_code() {
    let out = dfixer().args(["--errors", "NotACode"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown error code"));
}

#[test]
fn dfixer_json_output_parses() {
    let out = dfixer()
        .args(["--errors", "DsDigestInvalid", "--json"])
        .output()
        .unwrap();
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).unwrap();
    assert_eq!(v["status"], "Sb");
    assert!(v["zones"].as_array().unwrap().len() >= 3);
}

#[test]
fn zreplicator_replicates_and_dumps_zones() {
    let dir = std::env::temp_dir().join("ddx_cli_dump");
    let dir_s = dir.to_str().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    let out = zreplicator()
        .args(["--errors", "RrsigMissing", "--dump-dir", dir_s])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("IE ⊆ GE  : true"), "{text}");
    // Six zone files (3 zones × 2 servers), each parseable master format.
    let files: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
    assert_eq!(files.len(), 6);
    for f in files {
        let content = std::fs::read_to_string(f.unwrap().path()).unwrap();
        let zone = ddx_dns::parse_master(&content).unwrap();
        assert!(zone.soa().is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dfixer_metrics_out_dumps_every_subsystem() {
    let path = std::env::temp_dir().join("ddx_cli_metrics.json");
    let path_s = path.to_str().unwrap();
    let _ = std::fs::remove_file(&path);
    let out = dfixer()
        .args([
            "--errors",
            "RrsigExpired",
            "--nsec3",
            "--auto",
            "--metrics-out",
            path_s,
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // The run report lands on stdout…
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("== metrics"), "{text}");
    assert!(text.contains("| counter |"), "{text}");
    // …and the JSON dump round-trips into a MetricsSnapshot covering every
    // counter family the run exercised: the formerly bespoke stats surfaces
    // (SigCache, NSEC3 memo, answer memo) plus probe/grok/fixer.
    let json = std::fs::read_to_string(&path).unwrap();
    let snap = ddx_obs::MetricsSnapshot::from_json(&json).unwrap();
    for key in [
        "dnssec.sig_cache.misses",
        "dnssec.nsec3_memo.misses",
        "server.answer_memo.lookups",
        "probe.queries.sent",
        "grok.runs",
        "fixer.iterations",
    ] {
        assert!(
            snap.counters.get(key).copied().unwrap_or(0) > 0,
            "counter {key} missing or zero in {json}"
        );
    }
    assert!(
        snap.histograms.contains_key("probe.walk_us"),
        "probe walk histogram missing"
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn zreplicator_fails_on_unreplicable_code() {
    let out = zreplicator()
        .args(["--errors", "Nsec3OwnerNotBase32"])
        .output()
        .unwrap();
    assert!(
        !out.status.success(),
        "unreplicable code must fail replication"
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("skipped"));
}
