//! Measurement-pipeline integration: the corpus-derived tables and figures
//! must exhibit the paper's qualitative findings at a moderate scale.

use ddx::prelude::*;
use ddx_dataset::{analysis, params, tranco};
use ddx_dnsviz::Category;

fn corpus() -> Corpus {
    generate(&CorpusConfig {
        scale: 0.03,
        seed: 20_200_311,
    })
}

#[test]
fn table1_counts_scale_linearly() {
    let c = corpus();
    let rows = analysis::table1(&c);
    let sld = rows.iter().find(|r| r.level == "SLD+").unwrap();
    let expect_domains = params::table1::SLD_DOMAINS as f64 * 0.03;
    assert!(
        (sld.domains as f64 - expect_domains).abs() / expect_domains < 0.02,
        "domains {} vs {}",
        sld.domains,
        expect_domains
    );
    let expect_snaps = params::table1::SLD_SNAPSHOTS as f64 * 0.03;
    assert!(
        (sld.snapshots as f64 - expect_snaps).abs() / expect_snaps < 0.25,
        "snapshots {} vs {}",
        sld.snapshots,
        expect_snaps
    );
}

#[test]
fn headline_findings_hold() {
    let c = corpus();

    // "NSEC3 misconfigurations, delegation failures and missing/expired
    // signatures account for more than 70% of all bogus states" (abstract;
    // here measured over all error mentions).
    let prev = analysis::prevalence(&c);
    let mention_total: u64 = prev.rows.iter().map(|r| r.snapshots).sum();
    let big_three: u64 = prev
        .rows
        .iter()
        .filter(|r| {
            matches!(
                r.subcategory.category(),
                Category::Nsec3Only | Category::Nsec3Shared | Category::Delegation
            ) || matches!(
                r.subcategory,
                Subcategory::MissingSignature | Subcategory::ExpiredSignature
            )
        })
        .map(|r| r.snapshots)
        .sum();
    let share = big_three as f64 / mention_total as f64;
    assert!(share > 0.70, "big-three share {share}");

    // "18% of such domains remain broken" — sb never-resolved share.
    let rows = analysis::unresolved(&c);
    let sb = &rows[0];
    assert!(
        (0.08..0.35).contains(&sb.share()),
        "sb unresolved {}",
        sb.share()
    );

    // Critical errors get fixed faster than non-critical ones.
    let tm = analysis::transitions(&c);
    assert!(tm.median_hours[2][0] < tm.median_hours[1][0]);
}

#[test]
fn fig1_series_shapes() {
    let bins = tranco::tranco_bins(0.05, 20_200_311);
    // Downward coverage trend top → bottom.
    assert!(bins[0].dataset_share() > bins[9].dataset_share());
    // Signed-domain series stays above 30% everywhere.
    for b in &bins {
        assert!(b.signed_dataset_share() > 0.3, "bin {}", b.bin);
    }
    // Misconfiguration grows down-rank.
    assert!(bins[9].misconfigured_share() > bins[0].misconfigured_share());
}

#[test]
fn fig4_negative_errors_persist_longest() {
    let c = corpus();
    let rt = analysis::resolution_times(&c);
    // Gather the p50 per marker for the critical and non-critical groups.
    let p50 = |marker: u8, critical: bool| {
        rt.rows
            .iter()
            .find(|r| r.marker == marker && r.critical == critical)
            .map(|r| r.p50_hours)
    };
    // NZIC (9) and Original-TTL (8), both non-critical, outlast the
    // delegation-level criticals (1, 5) when present.
    if let (Some(nzic), Some(deleg)) = (p50(9, false), p50(5, true)) {
        assert!(nzic > deleg, "{nzic} !> {deleg}");
    }
    if let (Some(ttl), Some(digest)) = (p50(8, false), p50(1, true)) {
        assert!(ttl > digest, "{ttl} !> {digest}");
    }
}

#[test]
fn snapshot_serialization_round_trips() {
    // The corpus is the stand-in for DNSViz's JSON snapshot files; it must
    // survive serde round trips for pipeline interchange.
    let c = generate(&CorpusConfig {
        scale: 0.001,
        seed: 1,
    });
    let domain = c
        .sld_domains()
        .find(|d| d.snapshots.iter().any(|s| !s.errors.is_empty()))
        .expect("erroneous domain");
    let json = serde_json::to_string(domain).unwrap();
    let back: ddx_dataset::DomainRecord = serde_json::from_str(&json).unwrap();
    assert_eq!(back.snapshots.len(), domain.snapshots.len());
    assert_eq!(back.snapshots[0].status, domain.snapshots[0].status);
}

#[test]
fn large_scale_smoke() {
    // A 20%-scale corpus (64K domains, ~150K snapshots): headline
    // aggregates stay within calibration bands (the full-scale run is
    // exercised by `tables --full`; debug-build test time keeps this at
    // 0.2).
    let c = generate(&CorpusConfig {
        scale: 0.2,
        seed: 20_200_311,
    });
    let rows = analysis::table1(&c);
    let sld = rows.iter().find(|r| r.level == "SLD+").unwrap();
    assert_eq!(sld.domains, 63_855);
    assert_eq!(sld.multi, 16_992);
    let snap_delta = (sld.snapshots as f64 - 149_491.0).abs() / 149_491.0;
    assert!(
        snap_delta < 0.10,
        "snapshots {} off by {snap_delta:.2}",
        sld.snapshots
    );

    let prev = analysis::prevalence(&c);
    let err_share = prev.erroneous_snapshots as f64 / prev.total_snapshots as f64;
    assert!((0.28..0.45).contains(&err_share), "error share {err_share}");
    let nzic = prev
        .rows
        .iter()
        .find(|r| r.subcategory == Subcategory::NonzeroIterationCount)
        .unwrap();
    assert!(
        (20.0..33.0).contains(&nzic.snapshot_pct),
        "NZIC {}",
        nzic.snapshot_pct
    );

    let tm = analysis::transitions(&c);
    // The signature asymmetry at full scale: sb→sv in ~0.7h, sv→sb >100h.
    assert!(tm.median_hours[2][0] < 2.0);
    assert!(tm.median_hours[0][2] > 80.0);
}
