//! Convergence properties of the DFixer engine: pairwise combinations of
//! error codes must fix within the iteration budget, suggestion plans must
//! be stable, and the engine must never report success with errors left.

use std::collections::BTreeSet;

use ddx::prelude::*;

const NOW: u32 = 1_000_000;

fn needs_nsec3(code: ErrorCode) -> bool {
    use ErrorCode::*;
    matches!(
        code,
        Nsec3ProofMissing
            | Nsec3BitmapAssertsType
            | Nsec3CoverageBroken
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch
            | Nsec3IterationsNonzero
            | Nsec3OptOutViolation
            | Nsec3UnsupportedAlgorithm
            | Nsec3NoClosestEncloser
    )
}

fn needs_nsec(code: ErrorCode) -> bool {
    use ErrorCode::*;
    matches!(
        code,
        NsecProofMissing
            | NsecBitmapAssertsType
            | NsecCoverageBroken
            | NsecMissingWildcardProof
            | LastNsecNotApex
    )
}

fn request(codes: &[ErrorCode]) -> ReplicationRequest {
    let nsec3 = codes.iter().any(|c| needs_nsec3(*c));
    let mut meta = ZoneMeta::default();
    if nsec3 {
        meta.nsec3 = Some(Nsec3Meta {
            iterations: 0,
            salt_len: 0,
            opt_out: false,
        });
    }
    ReplicationRequest {
        meta,
        intended: codes.iter().copied().collect(),
    }
}

/// A deterministic selection of cross-category pairs.
fn pairs() -> Vec<(ErrorCode, ErrorCode)> {
    use ErrorCode::*;
    vec![
        (RrsigExpired, DsDigestInvalid),
        (RrsigMissing, Nsec3IterationsNonzero),
        (DsMissingKeyForAlgorithm, RrsigNotYetValid),
        (KeyLengthTooShort, OriginalTtlExceeded),
        (DnskeyAlgorithmWithoutRrsig, TtlBeyondSignatureExpiry),
        (RrsigBadLength, RrsigSignerMismatch),
        (Nsec3ParamMismatch, Nsec3OptOutViolation),
        (NsecCoverageBroken, RrsigExpired),
        (DnskeyMissingFromServers, RrsigMissingFromServers),
        (DsAlgorithmMismatch, RrsigInvalid),
        (RevokedKeyInUse, RrsigExpired),
        (Nsec3IterationsNonzero, Nsec3UnsupportedAlgorithm),
    ]
    .into_iter()
    .filter(|(a, b)| {
        // Skip structurally incompatible pairs (one needs NSEC, one NSEC3).
        !((needs_nsec(*a) && needs_nsec3(*b)) || (needs_nsec3(*a) && needs_nsec(*b)))
    })
    .collect()
}

#[test]
fn pairwise_combinations_converge() {
    let mut failures = Vec::new();
    for (i, (a, b)) in pairs().into_iter().enumerate() {
        let req = request(&[a, b]);
        let Ok(mut rep) = replicate(&req, NOW, 0x9000 + i as u64) else {
            failures.push(format!("{a}+{b}: replication error"));
            continue;
        };
        if !rep.skipped.is_empty() {
            continue; // combination not injectable in one sandbox
        }
        let cfg = rep.probe.clone();
        let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
        if !run.fixed {
            failures.push(format!("{a}+{b}: residual {:?}", run.final_errors));
        } else if run.iterations.len() > 4 {
            failures.push(format!("{a}+{b}: {} iterations", run.iterations.len()));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn fixed_flag_matches_final_errors() {
    let req = request(&[ErrorCode::RrsigExpired]);
    let mut rep = replicate(&req, NOW, 0xA11).unwrap();
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert_eq!(run.fixed, run.final_errors.is_empty());
    // After the engine reports success, an independent probe agrees.
    let report = grok(&probe(&rep.sandbox.testbed, &cfg));
    assert!(report.codes().is_empty());
    assert_eq!(report.status, SnapshotStatus::Sv);
}

#[test]
fn iteration_budget_respected() {
    let req = request(&[ErrorCode::RrsigExpired]);
    let mut rep = replicate(&req, NOW, 0xA12).unwrap();
    let cfg = rep.probe.clone();
    let opts = FixerOptions {
        max_iterations: 1,
        ..Default::default()
    };
    let run = run_fixer(&mut rep.sandbox, &cfg, &opts);
    assert!(run.iterations.len() <= 1);
}

#[test]
fn suggestion_is_deterministic() {
    let req = request(&[ErrorCode::DsReferencesRevokedKey]);
    let rep = replicate(&req, NOW, 0xA13).unwrap();
    let (_, res1, cmd1) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
    let (_, res2, cmd2) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::Bind);
    assert_eq!(res1.plan, res2.plan);
    assert_eq!(cmd1, cmd2);
}

#[test]
fn fixer_repairs_heavily_broken_zone() {
    // Five simultaneous error classes.
    let codes = [
        ErrorCode::RrsigExpired,
        ErrorCode::DsMissingKeyForAlgorithm,
        ErrorCode::KeyLengthTooShort,
        ErrorCode::OriginalTtlExceeded,
        ErrorCode::RrsigMissingFromServers,
    ];
    let req = request(&codes);
    let mut rep = replicate(&req, NOW, 0xA14).unwrap();
    assert!(rep.skipped.is_empty(), "{:?}", rep.skipped);
    let cfg = rep.probe.clone();
    // Verify the mess first.
    let before: BTreeSet<ErrorCode> = grok(&probe(&rep.sandbox.testbed, &cfg)).codes();
    assert!(before.len() >= 4, "only {before:?}");
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed, "residual {:?}", run.final_errors);
    assert!(run.iterations.len() <= 5);
}

#[test]
fn clean_zone_needs_zero_iterations() {
    let req = request(&[]);
    let mut rep = replicate(&req, NOW, 0xA15).unwrap();
    let cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed);
    assert!(run.iterations.is_empty());
}
