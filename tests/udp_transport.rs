//! The testbed over a real loopback UDP transport: genuine RFC 1035 wire
//! format end to end, the full probe/grok path against live sockets, and an
//! injected error diagnosed through the network.

use std::collections::BTreeSet;

use ddx::prelude::*;
use ddx_server::{Network, UdpNetwork, UdpServerHandle};

const NOW: u32 = 1_000_000;

/// Lifts every server of a sandbox onto its own UDP socket and returns a
/// matching network.
fn lift_to_udp(sandbox: &Sandbox) -> (Vec<UdpServerHandle>, UdpNetwork) {
    let mut handles = Vec::new();
    let mut net = UdpNetwork::new();
    for zone in &sandbox.zones {
        for sid in &zone.servers {
            let server = sandbox.testbed.server(sid).expect("server exists").clone();
            let handle = UdpServerHandle::spawn(server).expect("socket binds");
            net.add_route(&handle);
            handles.push(handle);
        }
        for host in &zone.ns_hosts {
            if let Some(sid) = sandbox.testbed.resolve_ns(host) {
                net.register_ns(host.clone(), sid);
            }
        }
    }
    (handles, net)
}

#[test]
fn healthy_hierarchy_verifies_over_udp() {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 0xBD1).unwrap();
    let (_handles, net) = lift_to_udp(&rep.sandbox);
    let report = grok(&probe(&net, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
    assert_eq!(report.zones.len(), 3);
}

#[test]
fn injected_error_detected_over_udp() {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let rep = replicate(&req, NOW, 0xBD2).unwrap();
    let (_handles, net) = lift_to_udp(&rep.sandbox);
    let report = grok(&probe(&net, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sb);
    assert!(report.codes().contains(&ErrorCode::RrsigExpired));
}

#[test]
fn udp_and_in_process_reports_agree() {
    let req = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 5,
                salt_len: 4,
                opt_out: false,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::from([ErrorCode::Nsec3IterationsNonzero]),
    };
    let rep = replicate(&req, NOW, 0xBD3).unwrap();
    let in_proc = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    let (_handles, net) = lift_to_udp(&rep.sandbox);
    let over_udp = grok(&probe(&net, &rep.probe));
    assert_eq!(in_proc.status, over_udp.status);
    assert_eq!(in_proc.codes(), over_udp.codes());
}

#[test]
fn large_dnskey_responses_survive_wire_round_trip() {
    // RSA-2048 keys and their signatures make DNSKEY responses sizable;
    // they must encode/decode intact within the 4096-byte EDNS budget.
    let meta = ZoneMeta {
        keys: vec![
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 8,
                bits: 2048,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 8,
                bits: 2048,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 13,
                bits: 256,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 13,
                bits: 256,
            },
        ],
        ds_digest_types: vec![2],
        nsec3: None,
    };
    let req = ReplicationRequest {
        meta,
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 0xBD4).unwrap();
    let (_handles, net) = lift_to_udp(&rep.sandbox);
    let report = grok(&probe(&net, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
}
