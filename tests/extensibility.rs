//! §5.6 extensibility: every DFixer plan renders into complete command
//! sequences for NSD, Knot, and PowerDNS — and each replicated error code's
//! plan is expressible in every flavor.

use std::collections::BTreeSet;

use ddx::prelude::*;

const NOW: u32 = 1_000_000;

fn needs_nsec3(code: ErrorCode) -> bool {
    use ErrorCode::*;
    matches!(
        code,
        Nsec3ProofMissing
            | Nsec3BitmapAssertsType
            | Nsec3CoverageBroken
            | Nsec3MissingWildcardProof
            | Nsec3ParamMismatch
            | Nsec3IterationsNonzero
            | Nsec3OptOutViolation
            | Nsec3UnsupportedAlgorithm
            | Nsec3NoClosestEncloser
    )
}

#[test]
fn every_replicable_error_renders_in_every_flavor() {
    for code in ErrorCode::ALL {
        if !code.replicable() {
            continue;
        }
        let mut meta = ZoneMeta::default();
        if needs_nsec3(code) {
            meta.nsec3 = Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            });
        }
        let req = ReplicationRequest {
            meta,
            intended: BTreeSet::from([code]),
        };
        let rep = replicate(&req, NOW, 0xE57).expect("replicates");
        if !rep.skipped.is_empty() {
            continue;
        }
        for flavor in ServerFlavor::ALL {
            let (_, resolution, commands) = suggest(&rep.sandbox, &rep.probe, flavor);
            assert!(
                !resolution.plan.is_empty(),
                "{code}: empty plan for {flavor:?}"
            );
            assert!(
                !commands.is_empty(),
                "{code}: no commands rendered for {flavor:?}"
            );
            for c in &commands {
                assert!(
                    c.manual || !c.line.trim().is_empty(),
                    "{code}/{flavor:?}: empty non-manual command"
                );
            }
        }
    }
}

#[test]
fn flavor_specific_tooling_used() {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsReferencesRevokedKey]),
    };
    let rep = replicate(&req, NOW, 0xE58).unwrap();
    let lines = |flavor| {
        let (_, _, commands) = suggest(&rep.sandbox, &rep.probe, flavor);
        commands
            .iter()
            .map(|c| c.line.clone())
            .collect::<Vec<_>>()
            .join("\n")
    };
    let bind = lines(ServerFlavor::Bind);
    assert!(bind.contains("dnssec-keygen"), "{bind}");
    assert!(bind.contains("dnssec-signzone"));
    let nsd = lines(ServerFlavor::Nsd);
    assert!(nsd.contains("ldns-keygen"), "{nsd}");
    assert!(nsd.contains("ldns-signzone"));
    let knot = lines(ServerFlavor::Knot);
    assert!(knot.contains("keymgr"), "{knot}");
    let pdns = lines(ServerFlavor::PowerDns);
    assert!(pdns.contains("pdnsutil"), "{pdns}");
}

#[test]
fn pdns_presigned_workaround_documented() {
    // PowerDNS pre-signed zones cannot be fixed in place (pdns#8892): the
    // rendered plan must include the manual note plus the import path.
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let rep = replicate(&req, NOW, 0xE59).unwrap();
    let (_, _, commands) = suggest(&rep.sandbox, &rep.probe, ServerFlavor::PowerDns);
    assert!(commands.iter().any(|c| c.manual && c.note.contains("8892")));
    assert!(commands.iter().any(|c| c.line.contains("load-zone")));
    assert!(commands.iter().any(|c| c.line.contains("rectify-zone")));
}

#[test]
fn registrar_steps_always_manual() {
    // DS upload/removal goes through the registrar in every flavor
    // (§5.5.2: "Requires manual update of DS records").
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsDigestInvalid]),
    };
    let rep = replicate(&req, NOW, 0xE5A).unwrap();
    for flavor in ServerFlavor::ALL {
        let (_, resolution, commands) = suggest(&rep.sandbox, &rep.probe, flavor);
        let wants_registrar = resolution.plan.iter().any(|i| {
            matches!(
                i.kind(),
                InstructionKind::UploadDs | InstructionKind::RemoveIncorrectDs
            )
        });
        if wants_registrar {
            assert!(
                commands
                    .iter()
                    .any(|c| c.manual && c.note.contains("registrar")),
                "{flavor:?}: registrar step not marked manual"
            );
        }
    }
}
