//! Cross-crate observability invariants: the global-registry deltas over a
//! full pipeline run must balance exactly — every answer-memo lookup is a
//! hit or a miss, every fault draw is passed or injected, every probe query
//! lands in exactly one outcome bucket — and the legacy per-instance
//! accessors must agree with the registry deltas they mirror.
//!
//! Everything lives in ONE `#[test]` function: the registry is
//! process-global, and a concurrently running sibling test in this binary
//! would bump counters between our before/after snapshots.

use ddx::prelude::*;
use ddx::EvalConfig;
use ddx_server::{FaultNetwork, FaultPlan};

fn counter(m: &MetricsSnapshot, key: &str) -> u64 {
    m.counters.get(key).copied().unwrap_or(0)
}

/// Sums every counter in the labeled family `prefix` (rendered keys look
/// like `server.fault.injected{kind=drop}`).
fn counter_family(m: &MetricsSnapshot, prefix: &str) -> u64 {
    m.counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(_, v)| *v)
        .sum()
}

#[test]
fn pipeline_metrics_balance_and_match_legacy_accessors() {
    let corpus = generate(&CorpusConfig {
        scale: 0.002,
        seed: 21,
    });

    // --- Chaos run: a uniform fault plan exercises the injection counters.
    let cfg = EvalConfig {
        max_snapshots: 16,
        fault_plan: Some(FaultPlan::uniform(7, 60)),
        ..Default::default()
    };
    let summary = ddx::evaluate_corpus_seq(&corpus, &cfg);
    let m = &summary.metrics;

    assert_eq!(counter(m, "pipeline.snapshots"), summary.total().snapshots);
    // The synthetic corpus is algorithmically benign: grok meters real
    // validation work, but nothing in it trips the default budget.
    assert!(
        counter(m, "grok.budget.sig_verifications") > 0,
        "no signature work metered across a full pipeline run"
    );
    assert_eq!(
        counter(m, "grok.budget.exceeded"),
        0,
        "benign corpus tripped a validation budget"
    );
    // One probe walk per GE diagnosis plus one per fixer iteration.
    assert!(counter(m, "probe.walks") >= summary.total().snapshots);
    let sent = counter(m, "probe.queries.sent");
    let outcomes = counter_family(m, "probe.queries{");
    assert!(sent > 0, "pipeline sent no probe queries");
    assert_eq!(outcomes, sent, "every probe query has exactly one outcome");
    assert!(counter(m, "probe.queries{outcome=ok}") <= sent);

    // Answer memo: hits + misses == lookups.
    let lookups = counter(m, "server.answer_memo.lookups");
    assert!(lookups > 0, "no server traffic recorded");
    assert_eq!(
        counter(m, "server.answer_memo.hits") + counter(m, "server.answer_memo.misses"),
        lookups,
    );

    // Grok memo: every zone the incremental revalidator accounts for is
    // either spliced from cache or probed live, and the probe layer's
    // zones-skipped counter mirrors the hits exactly.
    let gm_lookups = counter(m, "grok.memo.lookups");
    assert!(gm_lookups > 0, "fixer ran no incremental revalidations");
    assert_eq!(
        counter(m, "grok.memo.hits") + counter(m, "grok.memo.misses"),
        gm_lookups,
    );
    assert_eq!(
        counter(m, "probe.zones_skipped"),
        counter(m, "grok.memo.hits")
    );

    // Fault accounting: passed + Σ injected == draws.
    let draws = counter(m, "server.fault.queries");
    assert!(draws > 0, "the fault plan saw no traffic");
    let injected = counter_family(m, "server.fault.injected{");
    assert!(injected > 0, "uniform 60‰ plan injected nothing");
    assert_eq!(counter(m, "server.fault.passed") + injected, draws);

    // Stage timers cover every snapshot, under the split labels only: the
    // combined `probe_grok` label finished its one-release deprecation
    // window and must no longer be emitted.
    let replicate_stage = m
        .histograms
        .get("pipeline.stage_us{stage=replicate}")
        .expect("replicate stage timed");
    assert_eq!(replicate_stage.count, summary.total().snapshots);
    let probe_stage = m
        .histograms
        .get("pipeline.stage_us{stage=probe}")
        .expect("probe stage timed");
    assert_eq!(probe_stage.count, summary.total().snapshots);
    let grok_stage = m
        .histograms
        .get("pipeline.stage_us{stage=grok}")
        .expect("grok stage timed");
    assert_eq!(grok_stage.count, summary.total().snapshots);
    assert!(
        !m.histograms
            .contains_key("pipeline.stage_us{stage=probe_grok}"),
        "deprecated combined probe_grok stage label is still emitted"
    );

    // --- Passthrough run: an all-zero fault plan must draw on every query
    // yet inject nothing.
    let cfg = EvalConfig {
        max_snapshots: 8,
        fault_plan: Some(FaultPlan::none(7)),
        ..Default::default()
    };
    let summary = ddx::evaluate_corpus_seq(&corpus, &cfg);
    let m = &summary.metrics;
    let draws = counter(m, "server.fault.queries");
    assert!(draws > 0, "passthrough plan saw no traffic");
    assert_eq!(counter_family(m, "server.fault.injected{"), 0);
    assert_eq!(counter(m, "server.fault.passed"), draws);

    // --- Legacy accessor parity: with this test single-threaded and alone
    // in its binary, an instance's stats delta IS the registry delta.
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: std::collections::BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let rep = replicate(&request, 1_000_000, 0xB0B).expect("replicates");
    let net = FaultNetwork::new(&rep.sandbox.testbed, FaultPlan::uniform(3, 40));
    let (hits_before, misses_before) = rep.sandbox.testbed.answer_cache_stats();
    let before = ddx_obs::snapshot();
    let _report = grok(&probe(&net, &rep.probe));
    let delta = ddx_obs::snapshot().diff(&before);

    let stats = net.fault_stats();
    assert_eq!(
        counter(&delta, "server.fault.queries"),
        stats.passed + stats.injected(),
    );
    assert_eq!(counter(&delta, "server.fault.passed"), stats.passed);
    assert_eq!(
        counter_family(&delta, "server.fault.injected{"),
        stats.injected(),
    );
    let (hits_after, misses_after) = rep.sandbox.testbed.answer_cache_stats();
    assert_eq!(
        counter(&delta, "server.answer_memo.hits"),
        hits_after - hits_before,
    );
    assert_eq!(
        counter(&delta, "server.answer_memo.misses"),
        misses_after - misses_before,
    );

    // --- Grok-memo registry parity: two incremental revalidations of one
    // unchanged sandbox — the second is all hits, and the registry deltas
    // must mirror the memo's own stats exactly.
    let before = ddx_obs::snapshot();
    let mut memo = ddx_dnsviz::GrokMemo::new();
    let first = memo.probe_grok(&rep.sandbox.testbed, &rep.sandbox.testbed, &rep.probe);
    let second = memo.probe_grok(&rep.sandbox.testbed, &rep.sandbox.testbed, &rep.probe);
    assert_eq!(first.to_json(), second.to_json());
    let delta = ddx_obs::snapshot().diff(&before);
    let s = memo.stats();
    assert_eq!(s.lookups, s.hits + s.misses);
    assert!(s.hits > 0, "warm revalidation reused nothing");
    assert!(s.misses > 0, "cold revalidation missed nothing");
    assert_eq!(counter(&delta, "grok.memo.lookups"), s.lookups);
    assert_eq!(counter(&delta, "grok.memo.hits"), s.hits);
    assert_eq!(counter(&delta, "grok.memo.misses"), s.misses);
    assert_eq!(counter(&delta, "grok.memo.invalidations"), s.invalidations);
    assert_eq!(counter(&delta, "probe.zones_skipped"), s.hits);

    // --- Validation-budget ledger: building an adversarial sandbox meters
    // nothing; each truncated analysis trips at most once per zone the memo
    // actually re-analyzed; and the work counters are monotone across a
    // two-pass run (the tripped cut force-dirties, so the second pass does
    // fresh work instead of splicing the truncation from cache).
    let before = ddx_obs::snapshot();
    let atk = replicate_attack(AttackFamily::SigJam, 1_000_000, 0xBAD5).expect("attack replicates");
    let base = ddx_obs::snapshot();
    assert_eq!(
        counter(&base.diff(&before), "grok.budget.exceeded"),
        0,
        "replication alone performed grok work"
    );

    let mut memo = ddx_dnsviz::GrokMemo::new();
    let first = memo.probe_grok(&atk.sandbox.testbed, &atk.sandbox.testbed, &atk.probe);
    let d1 = ddx_obs::snapshot().diff(&base);
    assert!(
        first.codes().contains(&ErrorCode::ValidationBudgetExceeded),
        "SigJam did not trip: {:?}",
        first.codes()
    );
    assert!(counter(&d1, "grok.budget.sig_verifications") > 0);
    assert!(counter(&d1, "grok.budget.exceeded") >= 1);
    assert!(
        counter(&d1, "grok.budget.exceeded") <= counter(&d1, "grok.memo.lookups"),
        "more trips than zones accounted for"
    );

    let second = memo.probe_grok(&atk.sandbox.testbed, &atk.sandbox.testbed, &atk.probe);
    let d2 = ddx_obs::snapshot().diff(&base);
    assert_eq!(first.to_json(), second.to_json());
    assert!(
        counter(&d2, "grok.budget.sig_verifications")
            > counter(&d1, "grok.budget.sig_verifications"),
        "second pass over a tripped zone reused the truncated analysis"
    );
    assert!(counter(&d2, "grok.budget.exceeded") > counter(&d1, "grok.budget.exceeded"));
    assert!(counter(&d2, "grok.budget.exceeded") <= counter(&d2, "grok.memo.lookups"));
}
