//! ZReplicator fidelity: the replicated zones must mirror the snapshot's
//! meta-parameters (keys, algorithms, DS digests, NSEC3 settings) and the
//! intended errors, with benign companion errors allowed (paper footnote 4).

use std::collections::BTreeSet;

use ddx::prelude::*;
use ddx_dns::RData;

const NOW: u32 = 1_000_000;

#[test]
fn meta_key_count_and_algorithm_mirrored() {
    let meta = ZoneMeta {
        keys: vec![
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 8,
                bits: 2048,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 8,
                bits: 1024,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 13,
                bits: 256,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 13,
                bits: 256,
            },
        ],
        ds_digest_types: vec![1, 2],
        nsec3: None,
    };
    let req = ReplicationRequest {
        meta,
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 77).unwrap();
    let leaf = rep.sandbox.leaf();
    assert_eq!(leaf.ring.len(), 4);
    let mut algos = leaf.ring.algorithms(NOW);
    algos.sort_unstable();
    assert_eq!(algos, vec![8, 13]);
    // RSA ZSK carries the requested 1024 bits.
    assert!(leaf
        .ring
        .keys()
        .iter()
        .any(|k| k.key_bits == 1024 && k.role == KeyRole::Zsk));
    // DS digests 1 and 2 both present in the parent.
    let parent = &rep.sandbox.zones[1];
    let pzone = rep
        .sandbox
        .testbed
        .server(&parent.servers[0])
        .unwrap()
        .zone(&parent.apex)
        .unwrap();
    let ds_set = pzone.get(&leaf.apex, RrType::Ds).expect("DS present");
    let mut digest_types: Vec<u8> = ds_set
        .rdatas
        .iter()
        .filter_map(|rd| match rd {
            RData::Ds(d) => Some(d.digest_type),
            _ => None,
        })
        .collect();
    digest_types.sort_unstable();
    digest_types.dedup();
    assert_eq!(digest_types, vec![1, 2]);
    // And the zone verifies clean.
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
}

#[test]
fn nsec3_parameters_mirrored_exactly() {
    let req = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 33,
                salt_len: 6,
                opt_out: true,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::from([ErrorCode::Nsec3IterationsNonzero]),
    };
    let rep = replicate(&req, NOW, 78).unwrap();
    let leaf = rep.sandbox.leaf();
    let zone = rep
        .sandbox
        .testbed
        .server(&leaf.servers[0])
        .unwrap()
        .zone(&leaf.apex)
        .unwrap();
    let mut seen = false;
    for set in zone.rrsets().filter(|s| s.rtype == RrType::Nsec3) {
        for rd in &set.rdatas {
            if let RData::Nsec3(n3) = rd {
                assert_eq!(n3.iterations, 33);
                assert_eq!(n3.salt.len(), 6);
                assert!(n3.opt_out());
                seen = true;
            }
        }
    }
    assert!(seen, "zone has no NSEC3 records");
}

#[test]
fn deprecated_algorithms_substituted_consistently() {
    let meta = ZoneMeta {
        keys: vec![
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 3, // DSA — BIND cannot generate it
                bits: 1024,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 3,
                bits: 1024,
            },
        ],
        ds_digest_types: vec![2],
        nsec3: None,
    };
    let req = ReplicationRequest {
        meta,
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 79).unwrap();
    assert_eq!(rep.substitutions.len(), 1);
    assert_eq!(rep.substitutions[0].observed, 3);
    let generated = rep.substitutions[0].generated;
    // Both keys carry the same substitute and the chain still validates.
    for k in rep.sandbox.leaf().ring.keys() {
        assert_eq!(k.dnskey.algorithm, generated);
    }
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    assert_eq!(report.status, SnapshotStatus::Sv, "{:?}", report.codes());
}

#[test]
fn algorithm_exhaustion_fails_replication() {
    let meta = ZoneMeta {
        keys: vec![
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 8,
                bits: 2048,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Ksk,
                algorithm: 13,
                bits: 256,
            },
            ddx_replicator::KeySpec {
                role: KeyRole::Zsk,
                algorithm: 6,
                bits: 1024,
            },
        ],
        ds_digest_types: vec![2],
        nsec3: None,
    };
    let req = ReplicationRequest {
        meta,
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    assert!(replicate(&req, NOW, 80).is_err());
}

#[test]
fn companion_errors_are_superset_not_substitute() {
    // Footnote 4: simulating "Missing KSK for algorithm" may add companion
    // errors — IE ⊆ GE must still hold.
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::DsMissingKeyForAlgorithm]),
    };
    let rep = replicate(&req, NOW, 81).unwrap();
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    let generated = report.codes();
    assert!(generated.contains(&ErrorCode::DsMissingKeyForAlgorithm));
    // Whatever else appeared must not include unrelated criticals like
    // expired signatures.
    assert!(!generated.contains(&ErrorCode::RrsigExpired));
}

#[test]
fn two_servers_and_hierarchy_shape() {
    let req = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&req, NOW, 82).unwrap();
    assert_eq!(rep.sandbox.zones.len(), 3);
    assert_eq!(rep.sandbox.zones[0].apex, ddx_replicator::anchor_apex());
    assert_eq!(rep.sandbox.zones[1].apex, ddx_replicator::parent_apex());
    assert_eq!(rep.sandbox.zones[2].apex, ddx_replicator::target_apex());
    for z in &rep.sandbox.zones {
        assert_eq!(z.servers.len(), 2, "{} must run two servers", z.apex);
    }
}

#[test]
fn denial_mode_mismatch_is_a_replication_failure() {
    // An NSEC3-only error against an explicitly NSEC meta: the injector
    // must skip and the snapshot counts against RR (one of the modeled
    // §5.5.1 failure modes). The replicate() safety net only engages when
    // the meta is silent, not when it asserts NSEC3 parameters exist.
    let req = ReplicationRequest {
        meta: ZoneMeta {
            nsec3: Some(Nsec3Meta {
                iterations: 0,
                salt_len: 0,
                opt_out: false,
            }),
            ..ZoneMeta::default()
        },
        intended: BTreeSet::from([ErrorCode::NsecProofMissing]),
    };
    let rep = replicate(&req, NOW, 83).unwrap();
    assert_eq!(rep.skipped.len(), 1);
    let report = grok(&probe(&rep.sandbox.testbed, &rep.probe));
    assert!(!report.codes().contains(&ErrorCode::NsecProofMissing));
}
