//! Seed-swept adversarial-budget harness: every KeyTrap-class attack
//! family ([`AttackFamily`]) is replicated under a sweep of sandbox seeds
//! and groked under the default [`ValidationBudget`]. The sweep must never
//! panic, every attack must trip the budget into the typed
//! `ValidationBudgetExceeded` finding, and — the headline bound — the
//! *work actually performed* (signature verifications + NSEC3 hash rounds,
//! read from the process-global obs registry) must stay within 10× the
//! median work of the benign 8-variant zone corpus. DFixer must then
//! repair each attack zone within the Table-7 iteration bound.
//!
//! Failing cases are reported as one-line repro commands, replayable via
//! the same environment protocol as `probe_resilience`:
//!
//! ```text
//! CHAOS_SEED=17 CHAOS_VARIANT=sigjam \
//!     cargo test -q -p ddx --test adversarial_budgets -- seed_sweep
//! ```
//!
//! `CHAOS_SEEDS=<n>` caps the sweep (CI smoke runs use a small fixed set).
//!
//! Everything lives in ONE `#[test]` function: the work counters are
//! process-global (see `metrics_invariants`), and a concurrently running
//! sibling test in this binary would bump them between our before/after
//! snapshots.

use std::panic::{catch_unwind, AssertUnwindSafe};

use ddx::prelude::*;
use ddx_dnsviz::{ErrorDetail, ProbeConfig, RetryPolicy};
use ddx_replicator::{replicate_attack, AttackFamily};

const NOW: u32 = 1_000_000;
const SANDBOX_SEED: u64 = 0xC7A0;
const QUERY_DOMAIN: &str = "www.chd.par.a.com";
const LEAF_APEX: &str = "chd.par.a.com";
const PAR_APEX: &str = "par.a.com";
const ANCHOR_APEX: &str = "a.com";

/// The bound on adversarial grok work, as a multiple of the benign-corpus
/// median. The default budget caps are set a few multiples above benign
/// medians, so a tripped-and-truncated analysis lands well under this.
const WORK_BOUND_FACTOR: u64 = 10;

fn sweep_seeds() -> Vec<u64> {
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let seed = s.parse().expect("CHAOS_SEED must be an integer seed");
        return vec![seed];
    }
    let n = std::env::var("CHAOS_SEEDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(24u64);
    (0..n).collect()
}

fn repro_line(seed: u64, family: &str) -> String {
    format!(
        "CHAOS_SEED={seed} CHAOS_VARIANT={family} \
         cargo test -q -p ddx --test adversarial_budgets -- seed_sweep"
    )
}

/// The grok work one closure performed, read as registry deltas.
struct WorkDelta {
    sig: u64,
    nsec3: u64,
    exceeded: u64,
}

impl WorkDelta {
    fn total(&self) -> u64 {
        self.sig + self.nsec3
    }
}

fn measured<T>(f: impl FnOnce() -> T) -> (T, WorkDelta) {
    let before = ddx_obs::snapshot();
    let out = f();
    let delta = ddx_obs::snapshot().diff(&before);
    let c = |key: &str| delta.counters.get(key).copied().unwrap_or(0);
    (
        out,
        WorkDelta {
            sig: c("grok.budget.sig_verifications"),
            nsec3: c("grok.budget.nsec3_hashes"),
            exceeded: c("grok.budget.exceeded"),
        },
    )
}

// --- The benign corpus: the same 8 zone-shape variants as the dnsviz
// integration corpus (crates/dnsviz/tests/common), rebuilt here because
// per-crate test modules are not importable across crates.

fn benign_sandbox(tweak: impl FnOnce(&mut ZoneSpec), mutate: impl FnOnce(&mut Sandbox)) -> Sandbox {
    let mut leaf = ZoneSpec::conventional(name(LEAF_APEX));
    tweak(&mut leaf);
    let mut sb = build_sandbox(
        &[
            ZoneSpec::conventional(name(ANCHOR_APEX)),
            ZoneSpec::conventional(name(PAR_APEX)),
            leaf,
        ],
        NOW,
        SANDBOX_SEED,
    );
    mutate(&mut sb);
    sb
}

fn benign_variants() -> Vec<(&'static str, Sandbox)> {
    vec![
        ("nsec", benign_sandbox(|_| {}, |_| {})),
        (
            "nsec-wildcard",
            benign_sandbox(|s| s.wildcard = true, |_| {}),
        ),
        (
            "nsec3",
            benign_sandbox(|s| s.nsec3 = Some(Nsec3Config::default()), |_| {}),
        ),
        (
            "nsec3-optout-wildcard",
            benign_sandbox(
                |s| {
                    s.nsec3 = Some(Nsec3Config {
                        opt_out: true,
                        ..Nsec3Config::default()
                    });
                    s.wildcard = true;
                },
                |_| {},
            ),
        ),
        (
            "nsec-broken-chain",
            benign_sandbox(
                |_| {},
                |sb| {
                    sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                        z.remove(&name(QUERY_DOMAIN), RrType::Nsec);
                    });
                },
            ),
        ),
        (
            "nsec-corrupt-next",
            benign_sandbox(
                |_| {},
                |sb| {
                    sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                        if let Some(set) = z.get_mut(&name(LEAF_APEX), RrType::Nsec) {
                            for rdata in &mut set.rdatas {
                                if let RData::Nsec(n) = rdata {
                                    n.next_name = name("zzz.outside.test");
                                }
                            }
                        }
                    });
                },
            ),
        ),
        (
            "nsec3-stripped-sigs",
            benign_sandbox(
                |s| s.nsec3 = Some(Nsec3Config::default()),
                |sb| {
                    sb.testbed.mutate_zone_everywhere(&name(LEAF_APEX), |z| {
                        z.strip_type(RrType::Rrsig);
                    });
                },
            ),
        ),
        ("no-ds", benign_sandbox(|s| s.publish_ds = false, |_| {})),
    ]
}

fn benign_probe_cfg(sb: &Sandbox) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name(QUERY_DOMAIN),
        target_types: vec![RrType::A],
        time: NOW,
        retry: RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

/// Median grok work across the benign corpus. Broken-but-cheap variants
/// (stripped sigs, severed chains) belong in the profile: "benign" here
/// means *algorithmically* benign, not error-free.
fn benign_median_work() -> u64 {
    let mut works = Vec::new();
    for (label, sb) in benign_variants() {
        let cfg = benign_probe_cfg(&sb);
        let (report, work) = measured(|| grok(&probe(&sb.testbed, &cfg)));
        assert_eq!(
            work.exceeded, 0,
            "benign variant {label} tripped the default budget \
             (sig={} nsec3={}); the corpus no longer calibrates the bound",
            work.sig, work.nsec3
        );
        assert!(
            !report
                .codes()
                .contains(&ErrorCode::ValidationBudgetExceeded),
            "benign variant {label} reported a budget error without a trip"
        );
        works.push(work.total());
    }
    works.sort_unstable();
    let mid = works.len() / 2;
    let median = (works[mid - 1] + works[mid]) / 2;
    assert!(
        median > 0,
        "benign corpus performed no measurable grok work"
    );
    median
}

fn panic_note(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[test]
fn seed_sweep() {
    let variant_filter = std::env::var("CHAOS_VARIANT").ok();
    let median = benign_median_work();
    let bound = WORK_BOUND_FACTOR * median;
    let mut failing: Vec<String> = Vec::new();

    for seed in sweep_seeds() {
        for family in AttackFamily::ALL {
            if let Some(f) = &variant_filter {
                if f != family.label() {
                    continue;
                }
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                let rep = replicate_attack(family, NOW, seed).expect("attack replicates");
                assert!(rep.skipped.is_empty(), "attack skipped: {:?}", rep.skipped);
                let (report, work) = measured(|| grok(&probe(&rep.sandbox.testbed, &rep.probe)));
                // The default budget must trip, and the finding must be
                // the typed extension code — not a panic, not an OOM, not
                // an unbounded slow walk.
                assert!(
                    work.exceeded >= 1,
                    "no budget trip recorded (sig={} nsec3={})",
                    work.sig,
                    work.nsec3
                );
                assert!(
                    report
                        .codes()
                        .contains(&ErrorCode::ValidationBudgetExceeded),
                    "budget tripped but no typed finding; codes {:?}",
                    report.codes()
                );
                // The headline bound: work actually performed stays within
                // a small multiple of the benign median, however much work
                // the zone *demands*.
                assert!(
                    work.total() <= bound,
                    "adversarial grok work {} (sig={} nsec3={}) exceeds \
                     {WORK_BOUND_FACTOR}x benign median {median}",
                    work.total(),
                    work.sig,
                    work.nsec3
                );
                // Truncated reports still serialize and parse back.
                let json = report.to_json();
                GrokReport::from_json(&json).expect("adversarial report round-trips");
            }));
            if let Err(payload) = outcome {
                failing.push(format!(
                    "{}\n    # {}",
                    repro_line(seed, family.label()),
                    panic_note(payload.as_ref())
                ));
            }
        }
    }
    assert!(
        failing.is_empty(),
        "adversarial sweep failed; repro each with:\n{}",
        failing.join("\n")
    );

    // --- DFixer convergence: each attack family is repaired within the
    // Table-7 iteration bound, and the repaired zone is cheap to validate
    // again (the work bound holds without any budget trip).
    let opts = FixerOptions::default();
    for (i, family) in AttackFamily::ALL.into_iter().enumerate() {
        let mut rep = replicate_attack(family, NOW, 0xF1A7 + i as u64).expect("attack replicates");
        assert!(
            rep.skipped.is_empty(),
            "{family}: skipped {:?}",
            rep.skipped
        );
        let cfg = rep.probe.clone();
        let before = grok(&probe(&rep.sandbox.testbed, &cfg));
        assert!(
            before
                .codes()
                .contains(&ErrorCode::ValidationBudgetExceeded),
            "{family}: zone not adversarial before fixing: {:?}",
            before.codes()
        );
        // The typed detail names the counter the family was built to
        // exhaust — the contract the fixer plans against.
        let counter = before
            .errors()
            .find(|e| e.code == ErrorCode::ValidationBudgetExceeded)
            .map(|e| e.detail.clone());
        match counter {
            Some(ErrorDetail::BudgetExceeded { counter, used, cap }) => {
                assert_eq!(counter, family.counter(), "{family}");
                assert!(used > cap, "{family}: used {used} <= cap {cap}");
            }
            other => panic!("{family}: unexpected detail {other:?}"),
        }

        let run = run_fixer(&mut rep.sandbox, &cfg, &opts);
        assert!(run.fixed, "{family}: residual {:?}", run.final_errors);
        assert!(
            run.iterations.len() <= opts.max_iterations,
            "{family}: {} iterations exceeds the Table-7 bound {}",
            run.iterations.len(),
            opts.max_iterations
        );

        let (after, work) = measured(|| grok(&probe(&rep.sandbox.testbed, &cfg)));
        assert_eq!(work.exceeded, 0, "{family}: repaired zone still trips");
        assert!(
            after.codes().is_empty(),
            "{family}: repaired zone still broken: {:?}",
            after.codes()
        );
        assert_eq!(after.status, SnapshotStatus::Sv, "{family}");
        assert!(
            work.total() <= bound,
            "{family}: repaired zone still expensive: {} > {bound}",
            work.total()
        );
    }
}
