//! Rollover lifecycle integration: correctly executed rollovers keep the
//! zone `sv` at every phase; the botched KSK rollover (§3.4's top cause of
//! sv→sb transitions) breaks the chain and DFixer repairs it.

use ddx::prelude::*;
use ddx_dnsviz::ProbeConfig;
use ddx_server::{build_sandbox, Rollover, RolloverKind, Sandbox};

const NOW: u32 = 1_000_000;

fn sandbox() -> Sandbox {
    build_sandbox(
        &[
            ZoneSpec::conventional(name("a.com")),
            ZoneSpec::conventional(name("par.a.com")),
        ],
        NOW,
        61,
    )
}

fn probe_cfg(sb: &Sandbox, time: u32) -> ProbeConfig {
    ProbeConfig {
        anchor_zone: sb.anchor().apex.clone(),
        anchor_servers: sb.anchor().servers.clone(),
        query_domain: name("www.par.a.com"),
        target_types: vec![RrType::A],
        time,
        retry: ddx_dnsviz::RetryPolicy::default(),
        hints: sb
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
    }
}

fn status_at(sb: &Sandbox, time: u32) -> (SnapshotStatus, Vec<ErrorCode>) {
    let report = grok(&probe(&sb.testbed, &probe_cfg(sb, time)));
    let codes = report.codes().into_iter().collect();
    (report.status, codes)
}

/// Runs a rollover, asserting the zone validates after every phase (both
/// immediately after the change and after the prescribed wait).
fn assert_always_valid(kind: RolloverKind, alg: Option<Algorithm>) {
    let mut sb = sandbox();
    let apex = name("par.a.com");
    let mut rollover = Rollover::start(&sb, &apex, kind, alg, 7);
    let mut now = NOW;
    let mut phase = 0;
    while let Some(step) = rollover.advance(&mut sb, now) {
        phase += 1;
        let (status, codes) = status_at(&sb, now);
        assert_eq!(
            status,
            SnapshotStatus::Sv,
            "{kind:?} phase {phase} (immediately): {codes:?}"
        );
        now += step.wait_secs + 1;
        let (status, codes) = status_at(&sb, now);
        assert_eq!(
            status,
            SnapshotStatus::Sv,
            "{kind:?} phase {phase} (after wait): {codes:?}"
        );
    }
    assert!(phase >= 3, "{kind:?} ran only {phase} phases");
}

#[test]
fn zsk_prepublish_rollover_never_breaks() {
    assert_always_valid(RolloverKind::ZskPrePublish, None);
}

#[test]
fn ksk_double_ds_rollover_never_breaks() {
    assert_always_valid(RolloverKind::KskDoubleDs, None);
}

#[test]
fn algorithm_rollover_never_breaks() {
    assert_always_valid(
        RolloverKind::AlgorithmConservative,
        Some(Algorithm::RsaSha256),
    );
}

#[test]
fn botched_ksk_rollover_goes_bogus_and_dfixer_repairs() {
    let mut sb = sandbox();
    let apex = name("par.a.com");
    ddx_server::botched_ksk_rollover(&mut sb, &apex, NOW, 99);

    // The zone is now signed-and-bogus with a broken delegation — exactly
    // the paper's "Key Rollover" negative-transition signature.
    let (status, codes) = status_at(&sb, NOW);
    assert_eq!(status, SnapshotStatus::Sb, "{codes:?}");
    assert!(
        codes.contains(&ErrorCode::NoSecureEntryPoint)
            || codes.contains(&ErrorCode::DsDigestInvalid)
            || codes.contains(&ErrorCode::DsMissingKeyForAlgorithm),
        "{codes:?}"
    );

    // DFixer repairs it (uploading the correct DS, removing the stale one).
    let cfg = probe_cfg(&sb, NOW);
    let run = run_fixer(&mut sb, &cfg, &FixerOptions::default());
    assert!(run.fixed, "residual {:?}", run.final_errors);
    let kinds: Vec<InstructionKind> = run
        .iterations
        .iter()
        .flat_map(|it| it.plan.iter().map(|i| i.kind()))
        .collect();
    assert!(kinds.contains(&InstructionKind::UploadDs), "{kinds:?}");
    assert!(kinds.contains(&InstructionKind::RemoveIncorrectDs));
}

#[test]
fn botched_rollover_fixable_via_cds_too() {
    let mut sb = sandbox();
    let apex = name("par.a.com");
    ddx_server::botched_ksk_rollover(&mut sb, &apex, NOW, 77);
    let cfg = probe_cfg(&sb, NOW);
    let opts = FixerOptions {
        use_cds: true,
        ..Default::default()
    };
    let run = run_fixer(&mut sb, &cfg, &opts);
    assert!(run.fixed, "residual {:?}", run.final_errors);
    let kinds: Vec<InstructionKind> = run
        .iterations
        .iter()
        .flat_map(|it| it.plan.iter().map(|i| i.kind()))
        .collect();
    assert!(kinds.contains(&InstructionKind::PublishCds), "{kinds:?}");
}
