//! Full-pipeline integration test spanning every crate: corpus generation →
//! snapshot selection → ZReplicator → probe/grok → DFixer → re-verification,
//! with the Table 6 metrics computed over a real sample.

use ddx::prelude::*;
use ddx::{evaluate_corpus, evaluate_snapshot, EvalConfig};

#[test]
fn table6_metrics_have_paper_shape() {
    let corpus = generate(&CorpusConfig {
        scale: 0.004,
        seed: 11,
    });
    let cfg = EvalConfig {
        max_snapshots: 120,
        ..Default::default()
    };
    let summary = evaluate_corpus(&corpus, &cfg);
    let total = summary.total();
    assert!(
        total.snapshots >= 100,
        "sample too small: {}",
        total.snapshots
    );

    // Replication-rate shape: S1 near-perfect, S2 noticeably lower,
    // total in between (paper: 98.81% / 78.71% / 90.11%).
    assert!(summary.s1.rr() > 0.93, "s1 rr {}", summary.s1.rr());
    assert!(
        summary.s2.rr() < summary.s1.rr(),
        "s2 {} !< s1 {}",
        summary.s2.rr(),
        summary.s1.rr()
    );
    assert!(
        summary.s2.rr() > 0.5,
        "s2 rr collapsed: {}",
        summary.s2.rr()
    );
    let rr = total.rr();
    assert!((0.75..=1.0).contains(&rr), "total rr {rr}");

    // Fix-rate shape: everything replicated gets fixed (paper: 99.99%).
    assert!(total.fr() > 0.99, "fr {}", total.fr());

    // Convergence budget (paper: ≤4 iterations).
    assert!(summary.max_iterations <= 4, "{}", summary.max_iterations);
}

#[test]
fn single_snapshot_eval_exposes_ie_ge_ae() {
    let corpus = generate(&CorpusConfig {
        scale: 0.002,
        seed: 3,
    });
    let cfg = EvalConfig::default();
    let snapshot = corpus
        .erroneous_snapshots()
        .find(|s| s.is_nzic_only())
        .expect("an NZIC-only snapshot exists");
    let eval = evaluate_snapshot(snapshot, &cfg, 0);
    assert_eq!(
        eval.intended,
        std::collections::BTreeSet::from([ErrorCode::Nsec3IterationsNonzero])
    );
    assert!(eval.replicated, "generated {:?}", eval.generated);
    assert!(eval.generated.contains(&ErrorCode::Nsec3IterationsNonzero));
    let after = eval.after_fix.expect("fixer ran");
    assert!(after.is_empty(), "residual errors {after:?}");
    assert!(eval.iterations >= 1);
    // Fixing NZIC is a re-sign (paper §5.4).
    assert!(eval
        .instructions
        .iter()
        .any(|(_, k)| *k == InstructionKind::SignZone));
}

#[test]
fn table7_histogram_dominated_by_signing_and_ds() {
    let corpus = generate(&CorpusConfig {
        scale: 0.004,
        seed: 21,
    });
    let cfg = EvalConfig {
        max_snapshots: 150,
        ..Default::default()
    };
    let summary = evaluate_corpus(&corpus, &cfg);
    let hist = &summary.instruction_histogram;
    assert!(!hist.is_empty());
    let count = |k: InstructionKind| {
        hist.iter()
            .find(|(kind, _)| *kind == k)
            .map(|(_, cols)| cols[0])
            .unwrap_or(0)
    };
    let sign = count(InstructionKind::SignZone);
    let ds_remove = count(InstructionKind::RemoveIncorrectDs);
    assert!(sign > 0, "no sign instructions");
    // Paper Table 7: signing and DS removal are the two dominant first-
    // iteration instructions.
    for (kind, cols) in hist {
        if !matches!(
            kind,
            InstructionKind::SignZone | InstructionKind::RemoveIncorrectDs
        ) {
            assert!(
                cols[0] <= sign.max(ds_remove),
                "{kind} unexpectedly dominates"
            );
        }
    }
}

#[test]
fn unreplicable_errors_depress_rr_not_fr() {
    // Snapshots containing unreplicable codes must count against RR while
    // leaving FR untouched (they never reach the fixer).
    let corpus = generate(&CorpusConfig {
        scale: 0.01,
        seed: 31,
    });
    let cfg = EvalConfig::default();
    let mut checked = 0;
    for (i, s) in corpus.erroneous_snapshots().enumerate().take(400) {
        if s.errors.iter().any(|e| !e.replicable()) {
            let eval = evaluate_snapshot(s, &cfg, i as u64);
            assert!(!eval.replicated, "unreplicable {:?} replicated", s.errors);
            assert!(eval.after_fix.is_none());
            checked += 1;
        }
    }
    assert!(checked > 0, "corpus produced no unreplicable snapshots");
}
