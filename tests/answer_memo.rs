//! The generation-stamped answer memo under a real workload: a DFixer run
//! re-probes the sandbox every iteration, and every re-asked question whose
//! zone has not mutated since must be served from the per-server memo
//! (pointer bumps, not re-assembled responses). This pins the cache-hit
//! counters end-to-end rather than per-server.

use std::collections::BTreeSet;

use ddx::prelude::*;

const NOW: u32 = 1_000_000;

#[test]
fn fixer_run_is_served_partly_from_the_answer_memo() {
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired, ErrorCode::DsDigestInvalid]),
    };
    let mut rep = replicate(&request, NOW, 0xA11C).unwrap();
    let cfg = rep.probe.clone();

    let run = run_fixer(&mut rep.sandbox, &cfg, &FixerOptions::default());
    assert!(run.fixed, "final errors: {:?}", run.final_errors);

    let (hits, misses) = rep.sandbox.testbed.answer_cache_stats();
    assert!(misses > 0, "probing must populate the memo");
    assert!(
        hits > 0,
        "repeat probes of unmutated zones must hit the memo (hits={hits}, misses={misses})"
    );

    // A verification probe over the fixed sandbox re-asks questions the
    // fixer's last iteration already asked: hits keep climbing, and the
    // memoized answers still grok clean.
    let report = grok(&probe(&rep.sandbox.testbed, &cfg));
    assert_eq!(report.status, SnapshotStatus::Sv);
    let (hits_after, _) = rep.sandbox.testbed.answer_cache_stats();
    assert!(hits_after > hits, "post-fix probe should be memo-served");
}

#[test]
fn mutations_between_iterations_invalidate_without_flushing_everything() {
    // An unbroken replica: the second probe of an untouched sandbox must be
    // answered almost entirely from the memo.
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&request, NOW, 0xA11D).unwrap();
    let cfg = rep.probe.clone();
    let first = grok(&probe(&rep.sandbox.testbed, &cfg));
    let (_, m1) = rep.sandbox.testbed.answer_cache_stats();
    let second = grok(&probe(&rep.sandbox.testbed, &cfg));
    let (h2, m2) = rep.sandbox.testbed.answer_cache_stats();
    assert_eq!(first.status, second.status);
    assert_eq!(m2, m1, "identical re-probe must add no memo misses");
    assert!(h2 > 0);
}
