//! Client-cache semantics behind DFixer's WaitTtl step (paper Fig 8 step 5):
//! even after the authoritative side is fully repaired, a validator holding
//! cached delegation material keeps failing until the TTL expires.

use std::collections::BTreeSet;

use ddx::prelude::*;
use ddx_dnsviz::{resolve_validating, ResolverConfig, ValidationState};
use ddx_server::CachingNetwork;

const NOW: u32 = 1_000_000;

/// A network whose upstream can be switched between a broken and a fixed
/// testbed mid-test — standing in for "the authoritative side changed
/// underneath the validator's cache".
struct ShiftingNetwork<'a> {
    broken: &'a ddx_server::Testbed,
    fixed: &'a ddx_server::Testbed,
    use_fixed: std::cell::Cell<bool>,
}

impl ddx_server::Network for ShiftingNetwork<'_> {
    fn query(
        &self,
        server: &ddx_server::ServerId,
        query: &ddx_dns::Message,
    ) -> Option<std::sync::Arc<ddx_dns::Message>> {
        if self.use_fixed.get() {
            self.fixed.query(server, query)
        } else {
            self.broken.query(server, query)
        }
    }

    fn resolve_ns(&self, host: &Name) -> Option<ddx_server::ServerId> {
        self.fixed.resolve_ns(host)
    }
}

#[test]
fn cached_bogus_state_outlives_the_authoritative_fix() {
    // Break the zone with an expired signature.
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::from([ErrorCode::RrsigExpired]),
    };
    let mut rep = replicate(&request, NOW, 0xCAC4E).unwrap();
    let qname = name("www.inv-chd.par.a.com");
    let rcfg = ResolverConfig {
        anchor_zone: rep.sandbox.anchor().apex.clone(),
        anchor_servers: rep.sandbox.anchor().servers.clone(),
        hints: rep
            .sandbox
            .zones
            .iter()
            .map(|z| (z.apex.clone(), z.servers.clone()))
            .collect(),
        nsec3_policy: Default::default(),
    };

    // Snapshot the broken authoritative state, then repair the live one.
    let broken_testbed = rep.sandbox.testbed.clone();
    let probe_cfg = rep.probe.clone();
    let run = run_fixer(&mut rep.sandbox, &probe_cfg, &FixerOptions::default());
    assert!(run.fixed);

    let net = ShiftingNetwork {
        broken: &broken_testbed,
        fixed: &rep.sandbox.testbed,
        use_fixed: std::cell::Cell::new(false),
    };
    let cache = CachingNetwork::new(&net, NOW);

    // The validator populates its cache while the zone is still broken.
    let r = resolve_validating(&cache, &rcfg, &qname, RrType::A, NOW);
    assert_eq!(r.state, ValidationState::Bogus);

    // The authoritative side is now fixed — but the validator still answers
    // from its poisoned cache.
    net.use_fixed.set(true);
    cache.set_now(NOW + 10);
    let r = resolve_validating(&cache, &rcfg, &qname, RrType::A, NOW + 10);
    assert_eq!(
        r.state,
        ValidationState::Bogus,
        "cached records must keep the answer bogus until TTLs expire"
    );

    // After one full TTL everything cached has expired: the fix is visible.
    cache.set_now(NOW + 90_000);
    let r = resolve_validating(&cache, &rcfg, &qname, RrType::A, NOW + 90_000);
    assert_eq!(r.state, ValidationState::Secure, "ede={:?}", r.ede);
    assert!(r.ad);
}

#[test]
fn cache_hit_ratio_improves_on_repeated_probes() {
    let request = ReplicationRequest {
        meta: ZoneMeta::default(),
        intended: BTreeSet::new(),
    };
    let rep = replicate(&request, NOW, 0xCAC4F).unwrap();
    let cache = CachingNetwork::new(&rep.sandbox.testbed, NOW);
    let mut cfg = rep.probe.clone();
    cfg.time = NOW;
    let first = grok(&probe(&cache, &cfg));
    let (h1, m1) = cache.stats();
    assert_eq!(first.status, SnapshotStatus::Sv);
    let second = grok(&probe(&cache, &cfg));
    let (h2, m2) = cache.stats();
    assert_eq!(second.status, SnapshotStatus::Sv);
    assert_eq!(m2, m1, "second probe should add no upstream queries");
    assert!(h2 > h1, "second probe should be served from cache");
}
