#!/usr/bin/env bash
# Generates Cargo.lock and verifies it with `cargo build --locked`.
#
# Run this on any machine that can reach a cargo registry (the dev
# container cannot — its crates-io source replacement points at an
# unreachable mirror), then commit the result:
#
#   bash scripts/gen_lockfile.sh
#   git add Cargo.lock && git commit
#
# CI's `locked` job builds with `--locked` unconditionally and fails on
# lockfile drift once the file is committed.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo generate-lockfile
cargo build --locked
echo
echo "Cargo.lock generated and verified with 'cargo build --locked'."
echo "Commit it: git add Cargo.lock"
