#!/usr/bin/env bash
# Runs the recorded measurement protocol of every BENCH_pr*.json in the
# repo root and writes the measured numbers back into the JSON files:
#
#   - each `protocol.commands[]` entry is executed (output logged under
#     bench-logs/),
#   - criterion `time: [low mid high]` lines are parsed into a
#     `measured.criterion_medians_ns` map (median, nanoseconds),
#   - null `*_ns` fields under `benches.*` are filled in when exactly one
#     criterion id unambiguously matches the bench entry,
#   - `status` flips from "not-measured" to "measured" (or
#     "measured-partial" when a protocol command failed).
#
# The dev container cannot reach a cargo registry, so this normally runs
# in CI (the manually-dispatched `bench-record` job) or on any networked
# machine: `bash scripts/bench_record.sh`.
set -euo pipefail
cd "$(dirname "$0")/.."

python3 - <<'PY'
import datetime
import json
import os
import pathlib
import platform
import re
import subprocess

LOGS = pathlib.Path("bench-logs")
LOGS.mkdir(exist_ok=True)

UNIT_NS = {"ps": 1e-3, "ns": 1.0, "us": 1e3, "µs": 1e3, "ms": 1e6, "s": 1e9}

ID_TIME = re.compile(r"^(\S.*?)\s{2,}time:\s+\[(.*?)\]")
BARE_TIME = re.compile(r"^\s+time:\s+\[(.*?)\]")


def parse_criterion(text):
    """criterion prints `<id>   time: [low mid high]`, or the id on its
    own line when it is long — track the last bare line as the pending id."""
    medians = {}
    pending = None
    for line in text.splitlines():
        m = ID_TIME.match(line)
        if m:
            ident, triple = m.group(1).strip(), m.group(2)
        else:
            m = BARE_TIME.match(line)
            if m and pending:
                ident, triple = pending, m.group(1)
            else:
                stripped = line.strip()
                if stripped and not stripped.startswith(
                    ("Benchmarking", "Found", "Warning", "change:", "thrpt:", "Running", "Compiling", "Finished")
                ):
                    pending = stripped
                continue
        parts = triple.split()
        if len(parts) == 6 and parts[3] in UNIT_NS:
            medians[ident] = float(parts[2]) * UNIT_NS[parts[3]]
    return medians


for path in sorted(pathlib.Path(".").glob("BENCH_pr*.json")):
    data = json.loads(path.read_text())
    commands = (data.get("protocol") or {}).get("commands") or []
    medians = {}
    log, ok = [], True
    for cmd in commands:
        print(f"== {path.name}: {cmd}", flush=True)
        proc = subprocess.run(["bash", "-c", cmd], capture_output=True, text=True)
        log.append(f"$ {cmd}\n{proc.stdout}{proc.stderr}(exit {proc.returncode})\n\n")
        medians.update(parse_criterion(proc.stdout))
        if proc.returncode != 0:
            ok = False
    (LOGS / f"{path.stem}.log").write_text("".join(log))

    filled = 0
    for bench_name, entry in (data.get("benches") or {}).items():
        if not isinstance(entry, dict):
            continue
        for field, value in list(entry.items()):
            if value is not None or not field.endswith("_ns"):
                continue
            stem = field[: -len("_ns")]
            candidates = sorted(
                v
                for k, v in medians.items()
                if bench_name in k and (stem in k or stem in ("median", "time"))
            )
            if len(candidates) == 1:
                entry[field] = round(candidates[0], 1)
                filled += 1

    data["measured"] = {
        "recorded_utc": datetime.datetime.now(datetime.timezone.utc).strftime("%Y-%m-%dT%H:%M:%SZ"),
        "machine": platform.platform(),
        "cpus": os.cpu_count(),
        "commands_ok": ok,
        "criterion_medians_ns": {k: round(v, 1) for k, v in sorted(medians.items())},
    }
    if medians:
        data["status"] = "measured" if ok else "measured-partial"
    path.write_text(json.dumps(data, indent=2) + "\n")
    print(
        f"{path.name}: {len(medians)} criterion measurements, "
        f"{filled} bench fields filled, status={data.get('status')}"
    )
PY
